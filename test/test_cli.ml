(* Integration tests of the olar CLI binary: drive the full
   gen -> preprocess -> query -> update pipeline through the real
   executable. Skipped gracefully when the binary is not alongside the
   test runner (e.g. when tests are run from an install tree). *)

let cli_path () =
  let dir = Filename.dirname Sys.executable_name in
  let candidate = Filename.concat dir "../bin/olar_cli.exe" in
  if Sys.file_exists candidate then Some candidate else None

(* Run a command, return (exit code, stdout lines). *)
let run_cli cli args =
  let out = Filename.temp_file "olar_cli" ".out" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
    (fun () ->
      let command =
        Printf.sprintf "%s %s > %s 2>&1" (Filename.quote cli)
          (String.concat " " (List.map Filename.quote args))
          (Filename.quote out)
      in
      let code = Sys.command command in
      let ic = open_in out in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      (code, List.rev !lines))

let with_cli f () =
  match cli_path () with
  | None -> Alcotest.skip ()
  | Some cli -> f cli

let contains lines needle =
  List.exists (fun l -> Helpers.contains_substring l needle) lines

let check_ok name (code, lines) =
  if code <> 0 then
    Alcotest.failf "%s exited %d: %s" name code (String.concat " | " lines)

let in_temp_dir f =
  let dir = Filename.temp_file "olar_cli" ".d" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_pipeline cli =
  in_temp_dir (fun dir ->
      let db = Filename.concat dir "data.db" in
      let lattice = Filename.concat dir "data.lattice" in
      let delta = Filename.concat dir "delta.db" in
      let updated = Filename.concat dir "updated.lattice" in
      let csv = Filename.concat dir "rules.csv" in
      check_ok "gen"
        (run_cli cli
           [ "gen"; "--name"; "T8.I3.D1K"; "--items"; "150"; "--seed"; "5"; "-o"; db ]);
      check_ok "preprocess"
        (run_cli cli
           [ "preprocess"; "-d"; db; "--max-itemsets"; "2000"; "-o"; lattice ]);
      check_ok "preprocess bytes"
        (run_cli cli
           [ "preprocess"; "-d"; db; "--max-bytes"; "300000"; "-o"; lattice ]);
      check_ok "preprocess fpgrowth"
        (run_cli cli
           [
             "preprocess"; "-d"; db; "--max-itemsets"; "2000"; "--miner";
             "fpgrowth"; "-o"; lattice;
           ]);
      let code, lines = run_cli cli [ "info"; "-l"; lattice ] in
      check_ok "info" (code, lines);
      Alcotest.(check bool) "info mentions itemsets" true
        (contains lines "primary itemsets");
      let code, lines =
        run_cli cli [ "items"; "-l"; lattice; "--minsup"; "0.02"; "--limit"; "3" ]
      in
      check_ok "items" (code, lines);
      Alcotest.(check bool) "items header" true (contains lines "itemsets");
      check_ok "rules"
        (run_cli cli
           [ "rules"; "-l"; lattice; "--minsup"; "0.01"; "--minconf"; "0.6" ]);
      check_ok "rules csv"
        (run_cli cli
           [
             "rules"; "-l"; lattice; "--minsup"; "0.01"; "--minconf"; "0.6";
             "--format"; "csv"; "--measures"; "-o"; csv;
           ]);
      let header = open_in csv in
      let first = input_line header in
      close_in header;
      Alcotest.(check bool) "csv header has lift" true
        (Helpers.contains_substring first "lift");
      check_ok "count"
        (run_cli cli
           [ "count"; "-l"; lattice; "--minsup"; "0.01"; "--minconf"; "0.6" ]);
      let code, lines = run_cli cli [ "support-for"; "-l"; lattice; "-k"; "10" ] in
      check_ok "support-for" (code, lines);
      Alcotest.(check bool) "support-for answers" true
        (contains lines "exist at minsup" || contains lines "fewer than");
      check_ok "gen delta"
        (run_cli cli
           [ "gen"; "--name"; "T8.I3.D200"; "--items"; "150"; "--seed"; "6"; "-o"; delta ]);
      let code, lines =
        run_cli cli [ "update"; "-l"; lattice; "--delta"; delta; "-o"; updated ]
      in
      check_ok "update" (code, lines);
      Alcotest.(check bool) "update reports fold" true (contains lines "folded");
      check_ok "condense"
        (run_cli cli
           [ "condense"; "-d"; db; "--minsup"; "0.02"; "--kind"; "maximal" ]);
      check_ok "direct sampling"
        (run_cli cli
           [
             "direct"; "-d"; db; "--minsup"; "0.02"; "--minconf"; "0.7";
             "--miner"; "sampling";
           ]);
      (* named-basket workflow *)
      let baskets = Filename.concat dir "shop.baskets" in
      let oc = open_out baskets in
      output_string oc "beer, chips\nbeer, chips, salsa\nbeer, chips\nbread\n";
      close_out oc;
      let named_db = Filename.concat dir "shop.db" in
      let vocab = Filename.concat dir "shop.vocab" in
      let named_lattice = Filename.concat dir "shop.lattice" in
      check_ok "baskets"
        (run_cli cli [ "baskets"; "-i"; baskets; "-o"; named_db; "--vocab-out"; vocab ]);
      check_ok "preprocess named"
        (run_cli cli [ "preprocess"; "-d"; named_db; "--support"; "0.2"; "-o"; named_lattice ]);
      let code, lines =
        run_cli cli
          [
            "rules"; "-l"; named_lattice; "--minsup"; "0.4"; "--minconf"; "0.9";
            "--vocab"; vocab;
          ]
      in
      check_ok "named rules" (code, lines);
      Alcotest.(check bool) "rules print names" true (contains lines "beer"))

let test_error_paths cli =
  in_temp_dir (fun dir ->
      let db = Filename.concat dir "data.db" in
      check_ok "gen"
        (run_cli cli
           [ "gen"; "--name"; "T5.I2.D200"; "--items"; "50"; "--seed"; "1"; "-o"; db ]);
      (* bad dataset name *)
      let code, _ = run_cli cli [ "gen"; "--name"; "bogus"; "-o"; db ] in
      Alcotest.(check bool) "bad name rejected" true (code <> 0);
      (* preprocess with both budgets *)
      let lattice = Filename.concat dir "l" in
      let code, _ =
        run_cli cli
          [
            "preprocess"; "-d"; db; "--max-itemsets"; "10"; "--support"; "0.1";
            "-o"; lattice;
          ]
      in
      Alcotest.(check bool) "conflicting budgets rejected" true (code <> 0);
      (* query below the primary threshold exits 2 *)
      check_ok "preprocess"
        (run_cli cli [ "preprocess"; "-d"; db; "--support"; "0.1"; "-o"; lattice ]);
      let code, lines =
        run_cli cli [ "items"; "-l"; lattice; "--minsup"; "0.01" ]
      in
      Alcotest.(check int) "below-threshold exit code" 2 code;
      Alcotest.(check bool) "explains the limitation" true
        (contains lines "primary threshold");
      (* malformed lattice file *)
      let bogus = Filename.concat dir "bogus.lattice" in
      let oc = open_out bogus in
      output_string oc "not a lattice\n";
      close_out oc;
      let code, _ = run_cli cli [ "info"; "-l"; bogus ] in
      Alcotest.(check bool) "malformed rejected" true (code <> 0))

let test_domains_flag cli =
  in_temp_dir (fun dir ->
      let db = Filename.concat dir "data.db" in
      let lattice = Filename.concat dir "l" in
      let log = Filename.concat dir "queries.jsonl" in
      check_ok "gen"
        (run_cli cli
           [ "gen"; "--name"; "T5.I2.D200"; "--items"; "50"; "--seed"; "2"; "-o"; db ]);
      (* zero, negative and unparsable counts are cmdliner usage errors
         (exit 124), not silent clamps deep inside the mining layer *)
      List.iter
        (fun bad ->
          let code, lines =
            run_cli cli
              [
                "preprocess"; "-d"; db; "--support"; "0.05";
                "--domains=" ^ bad; "-o"; lattice;
              ]
          in
          Alcotest.(check int) ("--domains=" ^ bad ^ " rejected") 124 code;
          Alcotest.(check bool) "message names the count" true
            (contains lines "domain count"))
        [ "0"; "-3"; "two" ];
      (* oversubscription warns but proceeds *)
      let code, lines =
        run_cli cli
          [
            "preprocess"; "-d"; db; "--support"; "0.05"; "--domains"; "64";
            "-o"; lattice;
          ]
      in
      check_ok "preprocess with 64 domains" (code, lines);
      Alcotest.(check bool) "warns about oversubscription" true
        (contains lines "recommended domain count");
      (* capture a small log, then replay it through a serving pool *)
      check_ok "record queries"
        (run_cli cli
           [ "items"; "-l"; lattice; "--minsup"; "0.05"; "--record"; log ]);
      let code, lines =
        run_cli cli [ "replay"; "-l"; lattice; log; "--domains"; "4" ]
      in
      check_ok "pool replay" (code, lines);
      Alcotest.(check bool) "reports the pool width" true
        (contains lines "pool: 4 domains");
      Alcotest.(check bool) "zero mismatches" true
        (contains lines "0 mismatches");
      (* tracing is sharded per domain now, so a traced pool replay
         works and merges every domain's spans into one file *)
      let trace = Filename.concat dir "trace.jsonl" in
      let code, lines =
        run_cli cli
          [ "replay"; "-l"; lattice; log; "--domains"; "2"; "--trace"; trace ]
      in
      check_ok "traced pool replay" (code, lines);
      Alcotest.(check bool) "still zero mismatches" true
        (contains lines "0 mismatches");
      let ic = open_in trace in
      let n = ref 0 in
      let tagged = ref true in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then begin
             incr n;
             if not (Helpers.contains_substring line "\"domain\"") then
               tagged := false
           end
         done
       with End_of_file -> close_in ic);
      Alcotest.(check bool) "trace file has spans" true (!n > 0);
      Alcotest.(check bool) "every span is domain-tagged" true !tagged)

let suites =
  [
    ( "cli",
      [
        Alcotest.test_case "full pipeline" `Quick (with_cli test_pipeline);
        Alcotest.test_case "error paths" `Quick (with_cli test_error_paths);
        Alcotest.test_case "--domains validation and pool replay" `Quick
          (with_cli test_domains_flag);
      ] );
  ]
