(* End-to-end integration tests: generate -> preprocess -> query, checked
   against scans and the direct baseline on a synthetic Quest dataset
   large enough to be non-trivial but fast. *)

open Olar_data
open Olar_core

let check = Alcotest.check
let conf = Conf.of_float

let dataset =
  lazy
    (Olar_datagen.Quest.generate
       {
         Olar_datagen.Params.default with
         Olar_datagen.Params.num_items = 100;
         num_potential = 50;
         num_transactions = 2_000;
         avg_transaction_size = 8.0;
         avg_itemset_size = 3.0;
         seed = 123;
       })

let engine = lazy (Engine.at_threshold (Lazy.force dataset) ~primary_support:0.01)

let test_preprocess_counts () =
  let db = Lazy.force dataset in
  let engine = Lazy.force engine in
  check Alcotest.int "db size" 2_000 (Engine.db_size engine);
  check Alcotest.int "primary threshold count" 20
    (Engine.primary_threshold_count engine);
  (* every primary itemset's stored support equals a fresh scan *)
  let lat = Engine.lattice engine in
  Array.iter
    (fun (x, c) ->
      check Alcotest.int ("support of " ^ Itemset.to_string x)
        (Database.support_count db x) c)
    (Lattice.entries lat);
  (* Theorem 2.1 on real mined data *)
  let expected_edges =
    Array.fold_left (fun acc (x, _) -> acc + Itemset.cardinal x) 0 (Lattice.entries lat)
  in
  check Alcotest.int "Theorem 2.1" expected_edges (Lattice.num_edges lat)

let test_online_itemsets_match_direct () =
  let db = Lazy.force dataset in
  let engine = Lazy.force engine in
  List.iter
    (fun minsup_frac ->
      let minsup = Engine.count_of_support engine minsup_frac in
      let direct = Olar_baseline.Direct.query db ~minsup ~confidence:(conf 0.5) in
      let online = Engine.itemsets engine ~minsup:minsup_frac in
      check Alcotest.int
        (Printf.sprintf "itemset count at %.3f" minsup_frac)
        (List.length direct.Olar_baseline.Direct.itemsets)
        (List.length online);
      check Alcotest.int "count query agrees"
        (List.length online)
        (Engine.count_itemsets engine ~minsup:minsup_frac))
    [ 0.01; 0.02; 0.05 ]

let test_online_rules_match_direct () =
  let db = Lazy.force dataset in
  let engine = Lazy.force engine in
  List.iter
    (fun (s, c) ->
      let minsup = Engine.count_of_support engine s in
      let direct = Olar_baseline.Direct.query db ~minsup ~confidence:(conf c) in
      let online = Engine.all_rules engine ~minsup:s ~minconf:c in
      check (Alcotest.list Helpers.rule)
        (Printf.sprintf "all rules at (%.3f, %.2f)" s c)
        direct.Olar_baseline.Direct.rules online)
    [ (0.02, 0.9); (0.03, 0.5) ]

let test_essential_rules_are_essential () =
  (* Definition 4.2, checked by sampling (the full family is too large
     for the O(n²) filter): every essential rule must have no dominator
     in the family, every pruned rule must have one. *)
  let engine = Lazy.force engine in
  let all = Engine.all_rules engine ~minsup:0.05 ~minconf:0.7 in
  let essential = Engine.essential_rules engine ~minsup:0.05 ~minconf:0.7 in
  check Alcotest.bool "strictly fewer than all" true
    (List.length essential < List.length all);
  let all_arr = Array.of_list all in
  let dominated candidate =
    Array.exists
      (fun wrt ->
        (not (Rule.equal candidate wrt)) && Rule.redundant ~candidate ~wrt)
      all_arr
  in
  let essential_set = Hashtbl.create 1024 in
  List.iter (fun r -> Hashtbl.replace essential_set (Rule.to_string r) ()) essential;
  let sample step l = List.filteri (fun i _ -> i mod step = 0) l in
  List.iter
    (fun r ->
      check Alcotest.bool ("not dominated: " ^ Rule.to_string r) false (dominated r))
    (sample 7 essential);
  let pruned =
    List.filter (fun r -> not (Hashtbl.mem essential_set (Rule.to_string r))) all
  in
  check Alcotest.bool "some rules were pruned" true (pruned <> []);
  List.iter
    (fun r ->
      check Alcotest.bool ("dominated: " ^ Rule.to_string r) true (dominated r))
    (sample 97 pruned)

let test_redundancy_ratio_sanity () =
  (* Section 6: on Quest-style data redundancy is substantial and grows
     as support drops. *)
  let engine = Lazy.force engine in
  let at s =
    (Engine.redundancy engine ~minsup:s ~minconf:0.5).Rulegen.redundancy_ratio
  in
  let high = at 0.05 and low = at 0.03 in
  check Alcotest.bool
    (Printf.sprintf "ratio at low support (%.2f) >= at high (%.2f)" low high)
    true (low >= high);
  check Alcotest.bool "redundancy substantial" true (low > 2.0 && high > 2.0)

let test_queries_below_threshold_rejected () =
  let engine = Lazy.force engine in
  try
    ignore (Engine.itemsets engine ~minsup:0.001);
    Alcotest.fail "expected Below_primary_threshold"
  with Query.Below_primary_threshold _ -> ()

let test_preprocess_budgeted_pipeline () =
  let db = Lazy.force dataset in
  let stats = Olar_mining.Stats.create () in
  let engine = Engine.preprocess ~stats db ~max_itemsets:400 in
  check Alcotest.bool "budget respected" true
    (Engine.num_primary_itemsets engine <= 400);
  check Alcotest.bool "did real work" true
    (Olar_util.Timer.Counter.value stats.Olar_mining.Stats.passes > 0);
  (* the lattice answers a query consistently with a scan *)
  let minsup = 2. *. Engine.primary_threshold engine in
  List.iter
    (fun (x, s) ->
      check (Alcotest.float 1e-9)
        ("engine support of " ^ Itemset.to_string x)
        (Database.support db x) s)
    (Engine.itemsets engine ~minsup)

let test_save_load_pipeline () =
  let engine = Lazy.force engine in
  let path = Filename.temp_file "olar" ".lattice" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Engine.save engine path;
      let back = Engine.load path in
      check (Alcotest.list Helpers.rule) "identical essential rules"
        (Engine.essential_rules engine ~minsup:0.02 ~minconf:0.8)
        (Engine.essential_rules back ~minsup:0.02 ~minconf:0.8);
      check Alcotest.int "identical counts"
        (Engine.count_itemsets engine ~minsup:0.015)
        (Engine.count_itemsets back ~minsup:0.015))

let test_reverse_query_consistency () =
  (* FindSupport's answer, fed back to FindItemsets, yields >= k itemsets,
     and the strictly higher next support yields < k. *)
  let engine = Lazy.force engine in
  let lat = Engine.lattice engine in
  let k = 25 in
  match Support_query.find_support lat ~containing:Itemset.empty ~k with
  | { Support_query.support_level = Some level; itemsets } ->
    check Alcotest.int "returned k itemsets" k (List.length itemsets);
    let n_at_level =
      Query.count_itemsets lat ~containing:Itemset.empty ~minsup:level
    in
    check Alcotest.bool "at least k at the level" true (n_at_level >= k);
    let n_above =
      Query.count_itemsets lat ~containing:Itemset.empty ~minsup:(level + 1)
    in
    check Alcotest.bool "fewer than k above the level" true (n_above < k)
  | _ -> Alcotest.fail "expected k itemsets"

let test_work_scales_with_output () =
  (* The paper's headline: online work tracks output size, not lattice
     size. Compare work at a selective query vs a broad one. *)
  let engine = Lazy.force engine in
  let lat = Engine.lattice engine in
  let measure minsup =
    let work = Olar_util.Timer.Counter.create "w" in
    let out = Query.find_itemsets ~work lat ~containing:Itemset.empty ~minsup in
    (List.length out, Olar_util.Timer.Counter.value work)
  in
  let broad_out, broad_work = measure (Lattice.threshold lat) in
  let narrow_out, narrow_work = measure (max 1 (Lattice.db_size lat / 10)) in
  check Alcotest.bool "narrow output smaller" true (narrow_out < broad_out);
  check Alcotest.bool "narrow work smaller" true (narrow_work < broad_work);
  (* work is linear-ish in output: bounded by vertices + edges touched *)
  check Alcotest.bool "work bounded by output * max degree" true
    (broad_work <= (broad_out + 1) * (Lattice.num_edges lat + 1))

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "integration",
      [
        case "preprocess counts" test_preprocess_counts;
        case "online itemsets = direct" test_online_itemsets_match_direct;
        case "online rules = direct" test_online_rules_match_direct;
        case "essential rules are essential" test_essential_rules_are_essential;
        case "redundancy ratio sanity" test_redundancy_ratio_sanity;
        case "below-threshold rejected" test_queries_below_threshold_rejected;
        case "budgeted preprocess" test_preprocess_budgeted_pipeline;
        case "save/load" test_save_load_pipeline;
        case "reverse query consistency" test_reverse_query_consistency;
        case "work scales with output" test_work_scales_with_output;
      ] );
  ]
