(* Tests for olar.core foundations: Conf, Rule (redundancy theory),
   Lattice (construction + invariants, the paper's Table 2 example). *)

open Olar_data
open Olar_core

let check = Alcotest.check
let set = Itemset.of_list
let itemset = Helpers.itemset

(* ------------------------------------------------------------------ *)
(* Conf *)

let test_conf_validation () =
  List.iter
    (fun c ->
      Alcotest.check_raises
        (Printf.sprintf "reject %f" c)
        (Invalid_argument "Conf.of_float")
        (fun () -> ignore (Conf.of_float c)))
    [ 0.0; -0.5; 1.1; Float.nan ];
  check (Alcotest.float 0.0) "accept 1" 1.0 (Conf.to_float (Conf.of_float 1.0));
  check (Alcotest.float 0.0) "accept 0.3" 0.3 (Conf.to_float (Conf.of_float 0.3))

let test_conf_satisfied () =
  let c = Conf.of_float 0.75 in
  check Alcotest.bool "exact ratio passes" true
    (Conf.satisfied c ~union_count:3 ~antecedent_count:4);
  check Alcotest.bool "above passes" true
    (Conf.satisfied c ~union_count:4 ~antecedent_count:5);
  check Alcotest.bool "below fails" false
    (Conf.satisfied c ~union_count:2 ~antecedent_count:4);
  let one = Conf.of_float 1.0 in
  check Alcotest.bool "conf 1 equal counts" true
    (Conf.satisfied one ~union_count:7 ~antecedent_count:7);
  check Alcotest.bool "conf 1 strict" false
    (Conf.satisfied one ~union_count:6 ~antecedent_count:7);
  Alcotest.check_raises "bad antecedent"
    (Invalid_argument "Conf.satisfied: antecedent_count") (fun () ->
      ignore (Conf.satisfied c ~union_count:1 ~antecedent_count:0))

let test_conf_exact_thirds () =
  (* 1/3 is not a float; the tolerance must keep 2-of-6 at c = 2/6. *)
  let c = Conf.of_float (2.0 /. 6.0) in
  check Alcotest.bool "2/6 at c=2/6" true
    (Conf.satisfied c ~union_count:2 ~antecedent_count:6);
  check Alcotest.bool "1/6 fails" false
    (Conf.satisfied c ~union_count:1 ~antecedent_count:6)

(* ------------------------------------------------------------------ *)
(* Rule *)

let mk ?(sup = 3) ?(ante = 4) a c =
  Rule.make ~antecedent:(set a) ~consequent:(set c) ~support_count:sup
    ~antecedent_count:ante

let test_rule_make_validation () =
  Alcotest.check_raises "empty consequent"
    (Invalid_argument "Rule.make: empty consequent") (fun () ->
      ignore (mk [ 1 ] []));
  Alcotest.check_raises "overlap"
    (Invalid_argument "Rule.make: overlapping antecedent and consequent")
    (fun () -> ignore (mk [ 1; 2 ] [ 2; 3 ]));
  Alcotest.check_raises "support above antecedent"
    (Invalid_argument "Rule.make: support exceeds antecedent support")
    (fun () -> ignore (mk ~sup:5 ~ante:4 [ 1 ] [ 2 ]));
  Alcotest.check_raises "zero antecedent count"
    (Invalid_argument "Rule.make: zero antecedent support") (fun () ->
      ignore (mk ~sup:0 ~ante:0 [ 1 ] [ 2 ]));
  (* empty antecedent is legal *)
  let r = mk [] [ 1; 2 ] in
  check itemset "empty antecedent kept" Itemset.empty r.Rule.antecedent

let test_rule_accessors () =
  let r = mk ~sup:3 ~ante:4 [ 0; 2 ] [ 5 ] in
  check itemset "union" (set [ 0; 2; 5 ]) (Rule.union r);
  check (Alcotest.float 1e-9) "confidence" 0.75 (Rule.confidence r);
  check (Alcotest.float 1e-9) "support" 0.3 (Rule.support r ~db_size:10);
  check Alcotest.bool "single consequent" true (Rule.single_consequent r);
  check Alcotest.bool "multi consequent" false
    (Rule.single_consequent (mk [ 0 ] [ 1; 2 ]));
  Alcotest.check_raises "bad db_size" (Invalid_argument "Rule.support")
    (fun () -> ignore (Rule.support r ~db_size:2))

(* Table 1 of the paper: relative to X ⇒ YZ (X=0, Y=1, Z=2), the rules
   XY ⇒ Z and XZ ⇒ Y are simply redundant; X ⇒ Y and X ⇒ Z strictly. *)
let test_rule_redundancy_table1 () =
  let x_yz = mk [ 0 ] [ 1; 2 ] in
  let xy_z = mk [ 0; 1 ] [ 2 ] in
  let xz_y = mk [ 0; 2 ] [ 1 ] in
  let x_y = mk [ 0 ] [ 1 ] in
  let x_z = mk [ 0 ] [ 2 ] in
  check Alcotest.bool "XY=>Z simple wrt X=>YZ" true
    (Rule.simple_redundant ~candidate:xy_z ~wrt:x_yz);
  check Alcotest.bool "XZ=>Y simple wrt X=>YZ" true
    (Rule.simple_redundant ~candidate:xz_y ~wrt:x_yz);
  check Alcotest.bool "X=>Y strict wrt X=>YZ" true
    (Rule.strict_redundant ~candidate:x_y ~wrt:x_yz);
  check Alcotest.bool "X=>Z strict wrt X=>YZ" true
    (Rule.strict_redundant ~candidate:x_z ~wrt:x_yz);
  (* and none of the converses *)
  check Alcotest.bool "X=>YZ not redundant wrt XY=>Z" false
    (Rule.redundant ~candidate:x_yz ~wrt:xy_z);
  check Alcotest.bool "X=>YZ not redundant wrt X=>Y" false
    (Rule.redundant ~candidate:x_yz ~wrt:x_y);
  (* a rule is never redundant w.r.t. itself under the strict-containment
     definitions *)
  check Alcotest.bool "not self-redundant" false
    (Rule.redundant ~candidate:x_yz ~wrt:x_yz);
  (* unrelated unions are never redundant *)
  check Alcotest.bool "unrelated" false
    (Rule.redundant ~candidate:(mk [ 5 ] [ 6 ]) ~wrt:x_yz)

(* Theorem 4.3 closed forms versus explicit enumeration. *)
let count_redundant_brute ~kind m =
  (* X = {100}; Y = {0..m-1}. Enumerate all rules over subsets of X∪Y. *)
  let x = set [ 100 ] in
  let y = set (List.init m Fun.id) in
  let u = Itemset.union x y in
  let wrt = Rule.make ~antecedent:x ~consequent:y ~support_count:1 ~antecedent_count:1 in
  let count = ref 0 in
  List.iter
    (fun union' ->
      if not (Itemset.is_empty union') then
        List.iter
          (fun a ->
            let c = Itemset.diff union' a in
            if not (Itemset.is_empty c) then begin
              let candidate =
                Rule.make ~antecedent:a ~consequent:c ~support_count:1
                  ~antecedent_count:1
              in
              let hit =
                match kind with
                | `Simple -> Rule.simple_redundant ~candidate ~wrt
                | `Either -> Rule.redundant ~candidate ~wrt
              in
              if hit then incr count
            end)
          (Itemset.subsets union'))
    (Itemset.subsets u);
  !count

let test_rule_theorem43 () =
  for m = 1 to 6 do
    check Alcotest.int
      (Printf.sprintf "simple m=%d" m)
      (count_redundant_brute ~kind:`Simple m)
      (Rule.count_simple_redundant ~consequent_size:m);
    check Alcotest.int
      (Printf.sprintf "simple+strict m=%d" m)
      (count_redundant_brute ~kind:`Either m)
      (Rule.count_all_redundant ~consequent_size:m)
  done;
  (* the paper's example: A => BC has 2 simple and 4 total redundant rules *)
  check Alcotest.int "example simple" 2 (Rule.count_simple_redundant ~consequent_size:2);
  check Alcotest.int "example total" 4 (Rule.count_all_redundant ~consequent_size:2);
  Alcotest.check_raises "m=0" (Invalid_argument "Rule.count_simple_redundant")
    (fun () -> ignore (Rule.count_simple_redundant ~consequent_size:0))

let test_rule_order_pp () =
  let a = mk [ 0 ] [ 1 ] and b = mk [ 0 ] [ 1; 2 ] in
  check Alcotest.bool "order by union" true (Rule.compare a b < 0);
  check Alcotest.bool "equal" true (Rule.equal a (mk ~sup:1 ~ante:1 [ 0 ] [ 1 ]));
  check Alcotest.string "pp" "{0} => {1,2} (sup=3, conf=0.7500)" (Rule.to_string b);
  let v = Item.Vocab.of_names [ "beer"; "chips"; "salsa" ] in
  check Alcotest.string "pp_named" "{beer} => {chips,salsa} (sup=3, conf=0.7500)"
    (Format.asprintf "%a" (Rule.pp_named v) b)

(* Redundancy is sound: whenever [candidate] is redundant w.r.t. [wrt] on
   real data, its measured support and confidence are at least as high. *)
let redundancy_soundness_prop =
  QCheck2.Test.make ~name:"rule: redundancy implies dominance on data"
    ~count:200
    ~print:Helpers.db_print
    Helpers.db_gen
    (fun db ->
      let conf = Conf.of_float 0.01 in
      let rules = Helpers.brute_rules db ~minsup:1 ~confidence:conf in
      let rules = Array.of_list rules in
      let n = Array.length rules in
      let ok = ref true in
      for i = 0 to min n 40 - 1 do
        for j = 0 to min n 40 - 1 do
          if i <> j then begin
            let candidate = rules.(i) and wrt = rules.(j) in
            if Rule.redundant ~candidate ~wrt then begin
              let sup r = r.Rule.support_count in
              if sup candidate < sup wrt then ok := false;
              if Rule.confidence candidate < Rule.confidence wrt -. 1e-12 then
                ok := false
            end
          end
        done
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Lattice *)

let test_lattice_table2_structure () =
  let lat = Helpers.table2_lattice () in
  check Alcotest.int "vertices (root + 9)" 10 (Lattice.num_vertices lat);
  (* Theorem 2.1: edges = sum of itemset sizes = 4*1 + 4*2 + 1*3 = 15 *)
  check Alcotest.int "edges (Theorem 2.1)" 15 (Lattice.num_edges lat);
  check Alcotest.int "db_size" 1000 (Lattice.db_size lat);
  check Alcotest.int "threshold" 3 (Lattice.threshold lat);
  check Alcotest.int "root" 0 (Lattice.root lat);
  check itemset "root itemset" Itemset.empty (Lattice.itemset lat 0);
  check Alcotest.int "root support" 1000 (Lattice.support lat 0);
  (* supports via find *)
  List.iter
    (fun (l, expected) ->
      check (Alcotest.option Alcotest.int)
        (Itemset.to_string (set l))
        (Some expected)
        (Lattice.support_of lat (set l)))
    [
      ([ 0 ], 10); ([ 1 ], 20); ([ 2 ], 30); ([ 3 ], 10);
      ([ 0; 1 ], 4); ([ 0; 2 ], 7); ([ 1; 3 ], 6); ([ 1; 2 ], 4);
      ([ 0; 1; 2 ], 3);
    ];
  check (Alcotest.option Alcotest.int) "non-primary" None
    (Lattice.support_of lat (set [ 0; 3 ]))

let test_lattice_table2_adjacency () =
  let lat = Helpers.table2_lattice () in
  let v l = Option.get (Lattice.find lat (set l)) in
  let children l =
    Array.to_list (Array.map (Lattice.itemset lat) (Lattice.children lat (v l)))
  in
  (* Children of the root: the four items, in decreasing support order. *)
  check (Alcotest.list itemset) "root children sorted by support"
    [ set [ 2 ]; set [ 1 ]; set [ 0 ]; set [ 3 ] ]
    (children []);
  (* Children of A: AC (7) then AB (4). *)
  check (Alcotest.list itemset) "A's children" [ set [ 0; 2 ]; set [ 0; 1 ] ]
    (children [ 0 ]);
  (* B has children BD (6), AB (4), BC (4): ties broken lexicographically. *)
  check (Alcotest.list itemset) "B's children"
    [ set [ 1; 3 ]; set [ 0; 1 ]; set [ 1; 2 ] ]
    (children [ 1 ]);
  (* ABC's parents are the three contained pairs. *)
  let parents =
    Array.to_list
      (Array.map (Lattice.itemset lat) (Lattice.parents lat (v [ 0; 1; 2 ])))
  in
  check (Alcotest.list itemset) "ABC parents"
    [ set [ 0; 1 ]; set [ 0; 2 ]; set [ 1; 2 ] ]
    (List.sort Itemset.compare parents);
  (* every non-root vertex has |X| parents *)
  Lattice.iter_vertices
    (fun u ->
      if u <> 0 then
        check Alcotest.int "parent count = cardinality"
          (Lattice.cardinal lat u)
          (Array.length (Lattice.parents lat u)))
    lat

let test_lattice_validation () =
  let shout name entries =
    Alcotest.check_raises name
      (Invalid_argument
         (match name with
         | "closure" -> "Lattice.of_entries: not downward closed"
         | "duplicate" -> "Lattice.of_entries: duplicate itemset"
         | "range" -> "Lattice.of_entries: support out of range"
         | "monotone" -> "Lattice.of_entries: support not monotone"
         | _ -> assert false))
      (fun () -> ignore (Lattice.of_entries ~db_size:100 ~threshold:2 entries))
  in
  shout "closure" [| (set [ 0; 1 ], 5) |];
  shout "duplicate" [| (set [ 0 ], 5); (set [ 0 ], 5) |];
  shout "range" [| (set [ 0 ], 1) |];
  shout "monotone" [| (set [ 0 ], 5); (set [ 1 ], 5); (set [ 0; 1 ], 7) |];
  Alcotest.check_raises "empty itemset entry"
    (Invalid_argument "Lattice.of_entries: explicit empty itemset") (fun () ->
      ignore (Lattice.of_entries ~db_size:100 ~threshold:2 [| (Itemset.empty, 5) |]));
  Alcotest.check_raises "threshold 0" (Invalid_argument "Lattice.of_entries: threshold")
    (fun () -> ignore (Lattice.of_entries ~db_size:100 ~threshold:0 [||]))

let test_lattice_empty () =
  let lat = Lattice.of_entries ~db_size:50 ~threshold:10 [||] in
  check Alcotest.int "just root" 1 (Lattice.num_vertices lat);
  check Alcotest.int "no edges" 0 (Lattice.num_edges lat);
  check Alcotest.int "entries" 0 (Array.length (Lattice.entries lat))

let test_lattice_entries_roundtrip () =
  let lat = Helpers.table2_lattice () in
  let again =
    Lattice.of_entries ~db_size:1000 ~threshold:3 (Lattice.entries lat)
  in
  check Alcotest.int "vertices" (Lattice.num_vertices lat) (Lattice.num_vertices again);
  check Alcotest.int "edges" (Lattice.num_edges lat) (Lattice.num_edges again)

let test_lattice_bad_ids () =
  let lat = Helpers.table2_lattice () in
  Alcotest.check_raises "support oob" (Invalid_argument "Lattice.support")
    (fun () -> ignore (Lattice.support lat 10));
  Alcotest.check_raises "itemset neg" (Invalid_argument "Lattice.itemset")
    (fun () -> ignore (Lattice.itemset lat (-1)))

(* Lattice invariants on random mined data. *)
let lattice_invariants_prop =
  QCheck2.Test.make ~name:"lattice: invariants on mined entries" ~count:80
    ~print:Helpers.db_print Helpers.db_gen
    (fun db ->
      let entries = Array.of_list (Helpers.brute_frequent db ~minsup:2) in
      let lat =
        Lattice.of_entries ~db_size:(Database.size db) ~threshold:2 entries
      in
      (* Theorem 2.1 *)
      let expected_edges =
        Array.fold_left (fun acc (x, _) -> acc + Itemset.cardinal x) 0 entries
      in
      let ok = ref (Lattice.num_edges lat = expected_edges) in
      Lattice.iter_vertices
        (fun v ->
          (* children sorted by decreasing support, supports monotone,
             child extends parent by exactly one item *)
          let kids = Lattice.children lat v in
          Array.iteri
            (fun i c ->
              if Lattice.support lat c > Lattice.support lat v then ok := false;
              if i > 0 && Lattice.support lat kids.(i - 1) < Lattice.support lat c
              then ok := false;
              if Lattice.cardinal lat c <> Lattice.cardinal lat v + 1 then
                ok := false;
              if not (Itemset.subset (Lattice.itemset lat v) (Lattice.itemset lat c))
              then ok := false;
              (* duality: v must appear among c's parents *)
              if not (Array.exists (fun p -> p = v) (Lattice.parents lat c)) then
                ok := false)
            kids)
        lat;
      !ok)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "core.conf",
      [
        case "validation" test_conf_validation;
        case "satisfied" test_conf_satisfied;
        case "exact thirds" test_conf_exact_thirds;
      ] );
    ( "core.rule",
      [
        case "make validation" test_rule_make_validation;
        case "accessors" test_rule_accessors;
        case "redundancy (Table 1)" test_rule_redundancy_table1;
        case "Theorem 4.3 counts" test_rule_theorem43;
        case "order/pp" test_rule_order_pp;
        QCheck_alcotest.to_alcotest redundancy_soundness_prop;
      ] );
    ( "core.lattice",
      [
        case "Table 2 structure" test_lattice_table2_structure;
        case "Table 2 adjacency" test_lattice_table2_adjacency;
        case "validation" test_lattice_validation;
        case "empty" test_lattice_empty;
        case "entries roundtrip" test_lattice_entries_roundtrip;
        case "bad ids" test_lattice_bad_ids;
        QCheck_alcotest.to_alcotest lattice_invariants_prop;
      ] );
  ]
