(* Differential tests of the CSR lattice backend.

   Random downward-closed entry sets (brute-force mining of random
   databases) are built into a lattice; every query entry point is then
   checked against an oracle computed directly from the flat entry list,
   the packed layout is checked against its structural invariants, and
   the serializer is checked for bit-exact v2 round-trips, v1 backward
   compatibility, and clean [Malformed] errors on corrupted input. *)

open Olar_data
open Olar_core

let check = Alcotest.check
let set = Itemset.of_list
let entries_t = Alcotest.list Helpers.entry
let conf = Conf.of_float

(* ------------------------------------------------------------------ *)
(* Generators *)

(* A random database with a primary threshold, a query itemset over its
   universe and a minsup at or above the threshold. *)
let scenario_gen =
  let open QCheck2.Gen in
  let* db = Helpers.db_gen in
  let* threshold = int_range 1 4 in
  let* containing = Helpers.itemset_gen ~num_items:(Database.num_items db) in
  let* extra = int_range 0 4 in
  return (db, threshold, containing, threshold + extra)

let scenario_print (db, threshold, containing, minsup) =
  Format.asprintf "%s@ threshold=%d containing=%a minsup=%d"
    (Helpers.db_print db) threshold Itemset.pp containing minsup

let lattice_of db ~threshold =
  let entries = Array.of_list (Helpers.brute_frequent db ~minsup:threshold) in
  Lattice.of_entries ~db_size:(Database.size db) ~threshold entries

(* ------------------------------------------------------------------ *)
(* Oracles over the flat entry list *)

let strength (x, cx) (y, cy) =
  let c = Int.compare cy cx in
  if c <> 0 then c else Itemset.compare x y

let oracle_find entries ~containing ~minsup =
  List.sort strength
    (List.filter
       (fun (x, c) -> Itemset.subset containing x && c >= minsup)
       entries)

let rec take k = function
  | x :: rest when k > 0 -> x :: take (k - 1) rest
  | _ -> []

let oracle_support entries ~containing ~k =
  let sorted =
    List.sort strength
      (List.filter (fun (x, _) -> Itemset.subset containing x) entries)
  in
  let itemsets = take k sorted in
  let support_level =
    if List.length itemsets = k then Some (snd (List.nth itemsets (k - 1)))
    else None
  in
  (itemsets, support_level)

(* Unconstrained boundary of the itemset at [target], Definition 4.3 by
   exhaustive subset enumeration: non-empty strict subsets Y of X
   satisfying the confidence bound such that no non-empty strict subset
   of Y also satisfies it. *)
let oracle_boundary lat ~target ~confidence =
  let x = Lattice.itemset lat target in
  let sup_x = Lattice.support lat target in
  let satisfies y =
    match Lattice.support_of lat y with
    | None -> false
    | Some sup_y ->
      Conf.satisfied confidence ~union_count:sup_x ~antecedent_count:sup_y
  in
  Itemset.proper_nonempty_subsets x
  |> List.filter (fun y ->
         satisfies y
         && not (List.exists satisfies (Itemset.proper_nonempty_subsets y)))
  |> List.sort Itemset.compare

(* ------------------------------------------------------------------ *)
(* Differential properties: one per query entry point *)

let find_itemsets_csr_prop =
  QCheck2.Test.make ~name:"csr: find_itemsets matches flat oracle" ~count:250
    ~print:scenario_print scenario_gen
    (fun (db, threshold, containing, minsup) ->
      let lat = lattice_of db ~threshold in
      let entries = Helpers.brute_frequent db ~minsup:threshold in
      let got =
        Query.to_entries lat (Query.find_itemsets lat ~containing ~minsup)
      in
      got = oracle_find entries ~containing ~minsup)

let count_itemsets_csr_prop =
  QCheck2.Test.make ~name:"csr: count_itemsets matches flat oracle" ~count:250
    ~print:scenario_print scenario_gen
    (fun (db, threshold, containing, minsup) ->
      let lat = lattice_of db ~threshold in
      let entries = Helpers.brute_frequent db ~minsup:threshold in
      Query.count_itemsets lat ~containing ~minsup
      = List.length (oracle_find entries ~containing ~minsup))

let support_query_csr_prop =
  QCheck2.Test.make ~name:"csr: find_support matches flat oracle" ~count:250
    ~print:scenario_print scenario_gen
    (fun (db, threshold, containing, minsup) ->
      let lat = lattice_of db ~threshold in
      let entries = Helpers.brute_frequent db ~minsup:threshold in
      let k = 1 + (minsup mod 7) in
      let answer = Support_query.find_support lat ~containing ~k in
      let expected_itemsets, expected_level =
        oracle_support entries ~containing ~k
      in
      answer.Support_query.itemsets = expected_itemsets
      && answer.Support_query.support_level = expected_level)

let boundary_csr_prop =
  QCheck2.Test.make ~name:"csr: find_boundary matches subset oracle"
    ~count:250 ~print:scenario_print scenario_gen
    (fun (db, threshold, _containing, salt) ->
      let lat = lattice_of db ~threshold in
      let target = salt mod Lattice.num_vertices lat in
      let confidence = conf (0.2 +. (0.15 *. float_of_int (salt mod 5))) in
      let got =
        List.map (Lattice.itemset lat)
          (Boundary.find_boundary lat ~target ~confidence)
      in
      got = oracle_boundary lat ~target ~confidence)

(* ------------------------------------------------------------------ *)
(* Old-path semantics: entries round-trip *)

let entries_roundtrip_prop =
  QCheck2.Test.make ~name:"csr: entries round-trip preserves all queries"
    ~count:250 ~print:scenario_print scenario_gen
    (fun (db, threshold, containing, minsup) ->
      let lat = lattice_of db ~threshold in
      let lat' =
        Lattice.of_entries ~db_size:(Lattice.db_size lat)
          ~threshold:(Lattice.threshold lat) (Lattice.entries lat)
      in
      Lattice.entries lat = Lattice.entries lat'
      && Lattice.num_edges lat = Lattice.num_edges lat'
      && Query.find_itemsets lat ~containing ~minsup
         = Query.find_itemsets lat' ~containing ~minsup
      && (let k = 1 + (minsup mod 5) in
          Support_query.find_support lat ~containing ~k
          = Support_query.find_support lat' ~containing ~k)
      &&
      let target = minsup mod Lattice.num_vertices lat in
      Boundary.find_boundary lat ~target ~confidence:(conf 0.5)
      = Boundary.find_boundary lat' ~target ~confidence:(conf 0.5))

(* ------------------------------------------------------------------ *)
(* Structural invariants of the packed layout *)

let csr_invariants_prop =
  QCheck2.Test.make ~name:"csr: packed layout invariants" ~count:250
    ~print:scenario_print scenario_gen
    (fun (db, threshold, _, _) ->
      let lat = lattice_of db ~threshold in
      let n = Lattice.num_vertices lat in
      let e = Lattice.num_edges lat in
      let item_off = Lattice.item_offsets lat in
      let item_buf = Lattice.item_buffer lat in
      let child_off = Lattice.child_offsets lat in
      let child_buf = Lattice.child_edges lat in
      let parent_off = Lattice.parent_offsets lat in
      let parent_buf = Lattice.parent_edges lat in
      let ok = ref true in
      let assert_ ok' = if not ok' then ok := false in
      assert_ (Array.length item_off = n + 1 && Array.length child_off = n + 1);
      assert_ (item_off.(0) = 0 && item_off.(n) = e);
      assert_ (child_off.(0) = 0 && child_off.(n) = e);
      assert_ (parent_off.(0) = 0 && parent_off.(n) = e);
      (* Theorem 2.1: edges = total item slots *)
      let total_items = ref 0 in
      Lattice.iter_vertices
        (fun v -> total_items := !total_items + Lattice.cardinal lat v)
        lat;
      assert_ (!total_items = e);
      Lattice.iter_vertices
        (fun v ->
          assert_ (item_off.(v + 1) >= item_off.(v));
          for k = item_off.(v) + 1 to item_off.(v + 1) - 1 do
            assert_ (item_buf.(k) > item_buf.(k - 1))
          done;
          (* parent rows: ascending ids, one per item *)
          assert_ (parent_off.(v + 1) - parent_off.(v) = Lattice.cardinal lat v);
          for k = parent_off.(v) + 1 to parent_off.(v + 1) - 1 do
            assert_ (parent_buf.(k) > parent_buf.(k - 1))
          done;
          (* child rows: decreasing support, ties ascending id *)
          for k = child_off.(v) + 1 to child_off.(v + 1) - 1 do
            assert_ (Lattice.compare_strength lat child_buf.(k - 1) child_buf.(k) < 0)
          done;
          (* allocating accessors agree with the raw rows *)
          assert_
            (Array.to_list (Lattice.children lat v)
            = Array.to_list
                (Array.sub child_buf child_off.(v)
                   (child_off.(v + 1) - child_off.(v))));
          (* index round-trip *)
          assert_ (Lattice.find lat (Lattice.itemset lat v) = Some v);
          (* packed subset/disjoint agree with itemset algebra *)
          let x = Lattice.itemset lat v in
          assert_ (Lattice.vertex_has_subset lat v x);
          assert_ (Lattice.vertex_disjoint lat v Itemset.empty))
        lat;
      (* stats consistency *)
      let s = Lattice.stats lat in
      assert_ (s.Lattice.Stats.vertices = n && s.Lattice.Stats.edges = e);
      assert_ (s.Lattice.Stats.bytes = Lattice.estimated_bytes lat);
      let max_fanout = ref 0 and depth = ref 0 in
      Lattice.iter_vertices
        (fun v ->
          max_fanout := max !max_fanout (child_off.(v + 1) - child_off.(v));
          depth := max !depth (Lattice.cardinal lat v))
        lat;
      assert_ (s.Lattice.Stats.max_fanout = !max_fanout);
      assert_ (s.Lattice.Stats.depth = !depth);
      !ok)

(* ------------------------------------------------------------------ *)
(* Serialization: v2 round-trip, v1 compat, corruption *)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_saved lat f =
  let path = Filename.temp_file "olar_csr" ".lattice" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () ->
      Serialize.save lat path;
      f path)

let serialize_roundtrip_prop =
  QCheck2.Test.make ~name:"csr: v2 serialization round-trips bit-exactly"
    ~count:200 ~print:scenario_print scenario_gen
    (fun (db, threshold, containing, minsup) ->
      let lat = lattice_of db ~threshold in
      with_saved lat (fun path ->
          let bytes1 = read_file path in
          let lat' = Serialize.load path in
          with_saved lat' (fun path' ->
              let bytes2 = read_file path' in
              bytes1 = bytes2
              && Lattice.entries lat = Lattice.entries lat'
              && Lattice.estimated_bytes lat = Lattice.estimated_bytes lat'
              && Query.find_itemsets lat ~containing ~minsup
                 = Query.find_itemsets lat' ~containing ~minsup)))

(* Generate the retired v1 format from the entries and load it. *)
let v1_lines lat =
  let entries = Lattice.entries lat in
  let entry_line (x, c) =
    String.concat " "
      (string_of_int c :: List.map string_of_int (Itemset.to_list x))
  in
  [
    "# olar adjacency lattice v1";
    Printf.sprintf "dbsize %d" (Lattice.db_size lat);
    Printf.sprintf "threshold %d" (Lattice.threshold lat);
    Printf.sprintf "itemsets %d" (Array.length entries);
  ]
  @ Array.to_list (Array.map entry_line entries)

let v1_compat_prop =
  QCheck2.Test.make ~name:"csr: v1 format still loads identically" ~count:200
    ~print:scenario_print scenario_gen
    (fun (db, threshold, containing, minsup) ->
      let lat = lattice_of db ~threshold in
      let lat' = Serialize.parse (v1_lines lat) in
      Lattice.entries lat = Lattice.entries lat'
      && Lattice.db_size lat = Lattice.db_size lat'
      && Lattice.threshold lat = Lattice.threshold lat'
      && Query.find_itemsets lat ~containing ~minsup
         = Query.find_itemsets lat' ~containing ~minsup)

(* Corrupting a valid v2 image must raise Malformed — never an array
   bounds error or a silent success. *)
let corruption_gen =
  let open QCheck2.Gen in
  let* scenario = scenario_gen in
  let* mode = int_range 0 2 in
  let* salt = int_range 0 1_000_000 in
  return (scenario, mode, salt)

let corrupt lines ~mode ~salt =
  match mode with
  | 0 ->
    (* truncate *)
    take (salt mod List.length lines) lines
  | 1 ->
    (* replace one whitespace-separated token with garbage *)
    let joined = String.concat "\n" lines in
    let fields = String.split_on_char ' ' joined in
    let victim = salt mod List.length fields in
    String.split_on_char '\n'
      (String.concat " "
         (List.mapi (fun i f -> if i = victim then "x" else f) fields))
  | _ ->
    (* drop the magic line *)
    List.tl lines

let corruption_prop =
  QCheck2.Test.make ~name:"csr: corrupted v2 input raises clean Malformed"
    ~count:250
    ~print:(fun ((s, mode, salt)) ->
      Printf.sprintf "%s mode=%d salt=%d" (scenario_print s) mode salt)
    corruption_gen
    (fun ((db, threshold, _, _), mode, salt) ->
      let lat = lattice_of db ~threshold in
      let lines =
        with_saved lat (fun path ->
            String.split_on_char '\n' (String.trim (read_file path)))
      in
      match Serialize.parse (corrupt lines ~mode ~salt) with
      | exception Serialize.Malformed _ -> true
      | exception _ -> false (* Invalid_argument etc. leak through *)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Fixed fixtures and edge cases *)

let test_v1_fixture_loads () =
  (* A v1 file captured from the pre-CSR format writer (Table 2). *)
  let lines =
    [
      "# olar adjacency lattice v1";
      "dbsize 1000";
      "threshold 3";
      "itemsets 9";
      "10 0"; "20 1"; "30 2"; "10 3";
      "4 0 1"; "7 0 2"; "4 1 2"; "6 1 3";
      "3 0 1 2";
    ]
  in
  let lat = Serialize.parse lines in
  check Alcotest.int "vertices" 10 (Lattice.num_vertices lat);
  check Alcotest.int "edges" 15 (Lattice.num_edges lat);
  check (Alcotest.option Alcotest.int) "ABC support" (Some 3)
    (Lattice.support_of lat (set [ 0; 1; 2 ]));
  (* identical to building from entries directly *)
  let reference = Helpers.table2_lattice () in
  check entries_t "entries equal"
    (Array.to_list (Lattice.entries reference))
    (Array.to_list (Lattice.entries lat))

let test_root_only_lattice () =
  let lat = Lattice.of_entries ~db_size:7 ~threshold:2 [||] in
  check Alcotest.int "vertices" 1 (Lattice.num_vertices lat);
  check Alcotest.int "edges" 0 (Lattice.num_edges lat);
  let s = Lattice.stats lat in
  check Alcotest.int "depth" 0 s.Lattice.Stats.depth;
  check Alcotest.int "fanout" 0 s.Lattice.Stats.max_fanout;
  with_saved lat (fun path ->
      let lat' = Serialize.load path in
      check Alcotest.int "round-trip vertices" 1 (Lattice.num_vertices lat');
      check Alcotest.int "round-trip db_size" 7 (Lattice.db_size lat'))

let test_of_packed_rejects_inconsistent_children () =
  (* Structurally well-formed arrays whose child CSR does not match the
     itemsets: {0} and {1} both primary but the child rows swap their
     order under the root (supports 5 vs 9 demand 9 first). *)
  match
    Lattice.of_packed ~db_size:10 ~threshold:2 ~item_off:[| 0; 0; 1; 2 |]
      ~item_buf:[| 0; 1 |] ~supports:[| 10; 5; 9 |] ~child_off:[| 0; 2; 2; 2 |]
      ~child_buf:[| 1; 2 |]
  with
  | exception Invalid_argument msg ->
    check Alcotest.bool "names of_packed" true
      (Helpers.contains_substring msg "of_packed")
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Scratch reuse *)

(* 1000 mixed queries through one Engine (shared scratch) must match
   fresh-scratch runs — guards against stale marks, stack or heap state
   leaking between queries. *)
let test_scratch_reuse_1000 () =
  let db = Helpers.small_db () in
  let entries = Array.of_list (Helpers.brute_frequent db ~minsup:1) in
  let lat =
    Lattice.of_entries ~db_size:(Database.size db) ~threshold:1 entries
  in
  let engine = Engine.of_lattice lat in
  let scratch = Scratch.create lat in
  for i = 0 to 999 do
    let containing = if i mod 3 = 0 then Itemset.empty else set [ i mod 5 ] in
    let minsup = 1 + (i mod 4) in
    let confidence = conf (0.3 +. (0.1 *. float_of_int (i mod 6))) in
    match i mod 4 with
    | 0 ->
      check entries_t
        (Printf.sprintf "find_itemsets %d" i)
        (Query.to_entries lat (Query.find_itemsets lat ~containing ~minsup))
        (Query.to_entries lat
           (Query.find_itemsets ~scratch lat ~containing ~minsup))
    | 1 ->
      let frac = float_of_int minsup /. float_of_int (Database.size db) in
      check Alcotest.int
        (Printf.sprintf "count_itemsets %d" i)
        (Query.count_itemsets lat ~containing
           ~minsup:(Engine.count_of_support engine frac))
        (Engine.count_itemsets engine ~containing ~minsup:frac)
    | 2 ->
      let k = 1 + (i mod 7) in
      let fresh = Support_query.find_support lat ~containing ~k in
      let shared = Support_query.find_support ~scratch lat ~containing ~k in
      check entries_t
        (Printf.sprintf "find_support %d" i)
        fresh.Support_query.itemsets shared.Support_query.itemsets;
      check
        (Alcotest.option Alcotest.int)
        (Printf.sprintf "support_level %d" i)
        fresh.Support_query.support_level shared.Support_query.support_level
    | _ ->
      let target = i mod Lattice.num_vertices lat in
      check
        (Alcotest.list Alcotest.int)
        (Printf.sprintf "find_boundary %d" i)
        (Boundary.find_boundary lat ~target ~confidence)
        (Boundary.find_boundary ~scratch lat ~target ~confidence)
  done

(* A nested query while the scratch is busy must fall back to a fresh
   scratch instead of corrupting the outer walk. *)
let test_scratch_nested_use () =
  let lat = Helpers.table2_lattice () in
  let scratch = Scratch.create lat in
  let expected = Query.find_itemsets lat ~containing:Itemset.empty ~minsup:4 in
  Scratch.use ~scratch lat (fun s ->
      check Alcotest.bool "outer holds the scratch" true (s == scratch);
      let nested =
        Query.find_itemsets ~scratch lat ~containing:Itemset.empty ~minsup:4
      in
      check (Alcotest.list Alcotest.int) "nested query result" expected nested);
  (* the scratch is released and reusable afterwards *)
  let again =
    Query.find_itemsets ~scratch lat ~containing:Itemset.empty ~minsup:4
  in
  check (Alcotest.list Alcotest.int) "released" expected again

(* Epoch wraparound: a reset at [max_int] must wipe the marks and
   restart the epoch at 1 rather than wrapping to [min_int] and
   marching back up through values still sitting in [marks]. The epoch
   field is exposed precisely so this edge is testable without issuing
   max_int queries. *)
let test_scratch_epoch_wrap () =
  let lat = Helpers.table2_lattice () in
  let scratch = Scratch.create lat in
  let expected = Query.find_itemsets lat ~containing:Itemset.empty ~minsup:4 in
  (* drive the epoch to the edge: the next reset lands exactly on max_int *)
  scratch.Scratch.epoch <- max_int - 1;
  let at_edge =
    Query.find_itemsets ~scratch lat ~containing:Itemset.empty ~minsup:4
  in
  check (Alcotest.list Alcotest.int) "query at epoch = max_int" expected at_edge;
  check Alcotest.int "epoch reached max_int" max_int scratch.Scratch.epoch;
  check Alcotest.bool "marks carry the max_int stamp" true
    (Array.exists (fun m -> m = max_int) scratch.Scratch.marks);
  (* the wrapping reset: marks wiped, epoch restarted, answers exact *)
  let after =
    Query.find_itemsets ~scratch lat ~containing:Itemset.empty ~minsup:4
  in
  check (Alcotest.list Alcotest.int) "query after the wrap" expected after;
  check Alcotest.int "epoch restarted at 1" 1 scratch.Scratch.epoch;
  check Alcotest.bool "no stale max_int marks survive" false
    (Array.exists (fun m -> m = max_int) scratch.Scratch.marks)

(* A scratch created for one lattice is silently bypassed on another. *)
let test_scratch_wrong_lattice () =
  let lat = Helpers.table2_lattice () in
  let other = Helpers.table2_lattice () in
  let scratch = Scratch.create other in
  check (Alcotest.list Alcotest.int) "wrong-lattice scratch is safe"
    (Query.find_itemsets lat ~containing:Itemset.empty ~minsup:4)
    (Query.find_itemsets ~scratch lat ~containing:Itemset.empty ~minsup:4)

(* The engine's telemetry hook must cost nothing when disabled: over a
   1000-query loop, [Engine.count_itemsets] with the default (disabled)
   context allocates the same bytes as the raw kernel with a reused
   scratch — no closures or option boxes on the hot path (the [None]
   dispatch arm in engine.ml is the bare uninstrumented call). *)
let test_disabled_obs_zero_alloc () =
  let lat = Helpers.table2_lattice () in
  let engine = Engine.of_lattice lat in
  let scratch = Scratch.create lat in
  let frac = 4.0 /. float_of_int (Lattice.db_size lat) in
  let engine_query () = ignore (Engine.count_itemsets engine ~minsup:frac) in
  let raw_query () =
    ignore
      (Query.count_itemsets ~scratch lat ~containing:Itemset.empty
         ~minsup:(Engine.count_of_support engine frac))
  in
  let measure f =
    f ();
    (* warm-up: scratch growth doesn't count *)
    let before = Gc.allocated_bytes () in
    for _ = 1 to 1000 do
      f ()
    done;
    Gc.allocated_bytes () -. before
  in
  let raw_bytes = measure raw_query in
  let engine_bytes = measure engine_query in
  (* Any per-query boxing on the dispatch would cost >= 24 bytes/query
     = 24k over the loop; allow a few words of measurement noise. *)
  if engine_bytes > raw_bytes +. 512.0 then
    Alcotest.failf
      "disabled-obs engine allocated %.0f bytes over 1000 queries vs %.0f raw"
      engine_bytes raw_bytes

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "core.csr",
      [
        case "v1 fixture loads" test_v1_fixture_loads;
        case "root-only lattice" test_root_only_lattice;
        case "of_packed rejects bad children"
          test_of_packed_rejects_inconsistent_children;
        case "scratch reuse over 1000 queries" test_scratch_reuse_1000;
        case "disabled obs allocates nothing" test_disabled_obs_zero_alloc;
        case "scratch nested use" test_scratch_nested_use;
        case "scratch epoch wraparound" test_scratch_epoch_wrap;
        case "scratch wrong lattice" test_scratch_wrong_lattice;
      ] );
    Helpers.qsuite "core.csr.diff"
      [
        find_itemsets_csr_prop;
        count_itemsets_csr_prop;
        support_query_csr_prop;
        boundary_csr_prop;
        entries_roundtrip_prop;
        csr_invariants_prop;
      ];
    Helpers.qsuite "core.csr.serialize"
      [ serialize_roundtrip_prop; v1_compat_prop; corruption_prop ];
  ]
