(* Tests for olar.util: Vec, Heap, Bitset, Rng, Dist, Timer. *)

module Vec = Olar_util.Vec
module Heap = Olar_util.Heap
module Bitset = Olar_util.Bitset
module Rng = Olar_util.Rng
module Dist = Olar_util.Dist
module Counter = Olar_util.Timer.Counter

let check = Alcotest.check
let intl = Alcotest.(list int)

(* ------------------------------------------------------------------ *)
(* Vec *)

let test_vec_empty () =
  let v = Vec.create () in
  check Alcotest.int "length" 0 (Vec.length v);
  check Alcotest.bool "is_empty" true (Vec.is_empty v);
  check intl "to_list" [] (Vec.to_list v)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check Alcotest.int "length" 100 (Vec.length v);
  check Alcotest.int "get 0" 0 (Vec.get v 0);
  check Alcotest.int "get 99" 9801 (Vec.get v 99);
  Vec.set v 50 (-1);
  check Alcotest.int "set" (-1) (Vec.get v 50)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get -1" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v (-1)));
  Alcotest.check_raises "get len" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3));
  Alcotest.check_raises "set len" (Invalid_argument "Vec.set") (fun () ->
      Vec.set v 3 0);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      ignore (Vec.pop (Vec.create ())))

let test_vec_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check Alcotest.int "last" 3 (Vec.last v);
  check Alcotest.int "pop" 3 (Vec.pop v);
  check Alcotest.int "pop" 2 (Vec.pop v);
  check Alcotest.int "length" 1 (Vec.length v);
  Vec.push v 9;
  check intl "after push" [ 1; 9 ] (Vec.to_list v)

let test_vec_clear_reuse () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Vec.clear v;
  check Alcotest.int "cleared" 0 (Vec.length v);
  Vec.push v 7;
  check intl "reused" [ 7 ] (Vec.to_list v)

let test_vec_iterators () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check intl "map" [ 2; 4; 6; 8 ] (Vec.to_list (Vec.map (fun x -> 2 * x) v));
  check Alcotest.int "fold" 10 (Vec.fold_left ( + ) 0 v);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check Alcotest.bool "exists-not" false (Vec.exists (fun x -> x = 9) v);
  check Alcotest.bool "for_all" true (Vec.for_all (fun x -> x > 0) v);
  check Alcotest.bool "for_all-not" false (Vec.for_all (fun x -> x > 1) v);
  check intl "filter" [ 2; 4 ] (Vec.to_list (Vec.filter (fun x -> x mod 2 = 0) v));
  check (Alcotest.option Alcotest.int) "find_opt" (Some 2)
    (Vec.find_opt (fun x -> x mod 2 = 0) v);
  let seen = ref [] in
  Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  check
    Alcotest.(list (pair int int))
    "iteri" [ (0, 1); (1, 2); (2, 3); (3, 4) ] (List.rev !seen)

let test_vec_sort () =
  let v = Vec.of_list [ 5; 1; 4; 2; 3 ] in
  Vec.sort Int.compare v;
  check intl "sorted" [ 1; 2; 3; 4; 5 ] (Vec.to_list v)

let test_vec_append () =
  let a = Vec.of_list [ 1; 2 ] and b = Vec.of_list [ 3; 4 ] in
  Vec.append a b;
  check intl "append" [ 1; 2; 3; 4 ] (Vec.to_list a);
  check intl "src untouched" [ 3; 4 ] (Vec.to_list b)

let test_vec_init_make () =
  check intl "init" [ 0; 1; 4 ] (Vec.to_list (Vec.init 3 (fun i -> i * i)));
  check intl "make" [ 7; 7 ] (Vec.to_list (Vec.make 2 7));
  check intl "make 0" [] (Vec.to_list (Vec.make 0 7))

let test_vec_float_elements () =
  (* regression: float elements must not trip the flat-float-array
     representation (growth blits between arrays of mixed layout) *)
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (float_of_int i /. 4.0)
  done;
  check (Alcotest.float 0.0) "get" 12.5 (Vec.get v 50);
  Vec.sort (fun a b -> Float.compare b a) v;
  check (Alcotest.float 0.0) "sorted desc" 24.75 (Vec.get v 0);
  let a = Vec.to_array v in
  check (Alcotest.float 0.0) "to_array" 24.75 a.(0);
  let m = Vec.make 3 1.5 in
  Vec.push m 2.5;
  check (Alcotest.float 0.0) "make+push" 2.5 (Vec.pop m);
  let i = Vec.init 4 (fun k -> float_of_int k *. 0.5) in
  check (Alcotest.float 0.0) "init" 1.5 (Vec.last i);
  let heap = Heap.of_list Float.compare [ 2.5; 0.5; 1.5 ] in
  check (Alcotest.list (Alcotest.float 0.0)) "heap of floats" [ 0.5; 1.5; 2.5 ]
    (Heap.to_sorted_list heap)

let vec_roundtrip_prop =
  QCheck2.Test.make ~name:"vec: of_list/to_list roundtrip" ~count:200
    QCheck2.(Gen.list Gen.small_int)
    (fun l -> Vec.to_list (Vec.of_list l) = l)

let vec_push_pop_prop =
  QCheck2.Test.make ~name:"vec: pushes then pops reverse" ~count:200
    QCheck2.(Gen.list Gen.small_int)
    (fun l ->
      let v = Vec.create () in
      List.iter (Vec.push v) l;
      let popped = List.init (List.length l) (fun _ -> Vec.pop v) in
      popped = List.rev l && Vec.is_empty v)

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Heap.create Int.compare in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  check (Alcotest.option Alcotest.int) "peek empty" None (Heap.peek h);
  check (Alcotest.option Alcotest.int) "pop empty" None (Heap.pop h);
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  check Alcotest.int "length" 6 (Heap.length h);
  check (Alcotest.option Alcotest.int) "peek" (Some 1) (Heap.peek h);
  check intl "drain ascending" [ 1; 2; 3; 5; 8; 9 ] (Heap.to_sorted_list h);
  check Alcotest.bool "drained" true (Heap.is_empty h)

let test_heap_max_order () =
  let h = Heap.of_list (fun a b -> Int.compare b a) [ 4; 7; 1 ] in
  check intl "descending" [ 7; 4; 1 ] (Heap.to_sorted_list h)

let test_heap_duplicates () =
  let h = Heap.of_list Int.compare [ 2; 2; 1; 2 ] in
  check intl "dups kept" [ 1; 2; 2; 2 ] (Heap.to_sorted_list h)

let test_heap_pop_exn () =
  let h = Heap.create Int.compare in
  Alcotest.check_raises "empty" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h));
  Heap.push h 3;
  check Alcotest.int "pop_exn" 3 (Heap.pop_exn h)

let test_heap_clear () =
  let h = Heap.of_list Int.compare [ 1; 2 ] in
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h)

let heap_sort_prop =
  QCheck2.Test.make ~name:"heap: drain equals List.sort" ~count:300
    QCheck2.(Gen.list Gen.small_int)
    (fun l ->
      Heap.to_sorted_list (Heap.of_list Int.compare l) = List.sort Int.compare l)

let heap_interleaved_prop =
  QCheck2.Test.make ~name:"heap: peek is minimum under interleaving" ~count:200
    QCheck2.(Gen.list (Gen.pair Gen.bool Gen.small_int))
    (fun ops ->
      let h = Heap.create Int.compare in
      let model = ref [] in
      List.for_all
        (fun (is_push, x) ->
          if is_push then begin
            Heap.push h x;
            model := x :: !model;
            true
          end
          else
            match (Heap.pop h, !model) with
            | None, [] -> true
            | Some y, (hd :: _ as l) ->
              let m = List.fold_left min hd l in
              let dup_count = List.length (List.filter (fun z -> z = m) l) in
              model :=
                List.filter (fun z -> z <> m) l
                @ List.init (dup_count - 1) (fun _ -> m);
              y = m
            | Some _, [] | None, _ :: _ -> false)
        ops)

(* ------------------------------------------------------------------ *)
(* Bitset *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check Alcotest.int "capacity" 100 (Bitset.capacity s);
  check Alcotest.int "cardinal" 0 (Bitset.cardinal s);
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check Alcotest.bool "mem 0" true (Bitset.mem s 0);
  check Alcotest.bool "mem 63" true (Bitset.mem s 63);
  check Alcotest.bool "mem 64" true (Bitset.mem s 64);
  check Alcotest.bool "mem 1" false (Bitset.mem s 1);
  check Alcotest.int "cardinal" 4 (Bitset.cardinal s);
  check intl "to_list" [ 0; 63; 64; 99 ] (Bitset.to_list s);
  Bitset.remove s 63;
  check Alcotest.bool "removed" false (Bitset.mem s 63);
  check Alcotest.int "cardinal after remove" 3 (Bitset.cardinal s)

let test_bitset_idempotent () =
  let s = Bitset.create 10 in
  Bitset.add s 5;
  Bitset.add s 5;
  check Alcotest.int "double add" 1 (Bitset.cardinal s);
  Bitset.remove s 5;
  Bitset.remove s 5;
  check Alcotest.int "double remove" 0 (Bitset.cardinal s)

let test_bitset_bounds () =
  let s = Bitset.create 8 in
  Alcotest.check_raises "add oob" (Invalid_argument "Bitset.add") (fun () ->
      Bitset.add s 8);
  Alcotest.check_raises "mem oob" (Invalid_argument "Bitset.mem") (fun () ->
      ignore (Bitset.mem s (-1)));
  Alcotest.check_raises "create neg" (Invalid_argument "Bitset.create")
    (fun () -> ignore (Bitset.create (-1)))

let test_bitset_clear_copy () =
  let s = Bitset.create 20 in
  Bitset.add s 3;
  Bitset.add s 17;
  let c = Bitset.copy s in
  Bitset.clear s;
  check Alcotest.int "cleared" 0 (Bitset.cardinal s);
  check intl "copy unaffected" [ 3; 17 ] (Bitset.to_list c)

let test_bitset_zero_capacity () =
  let s = Bitset.create 0 in
  check Alcotest.int "cardinal" 0 (Bitset.cardinal s);
  check intl "to_list" [] (Bitset.to_list s)

let bitset_model_prop =
  QCheck2.Test.make ~name:"bitset: agrees with a list model" ~count:200
    QCheck2.(Gen.list (Gen.pair Gen.bool (Gen.int_range 0 63)))
    (fun ops ->
      let s = Bitset.create 64 in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add s i;
            Hashtbl.replace model i ()
          end
          else begin
            Bitset.remove s i;
            Hashtbl.remove model i
          end)
        ops;
      let expected = List.sort Int.compare (Hashtbl.fold (fun i () l -> i :: l) model []) in
      Bitset.to_list s = expected && Bitset.cardinal s = List.length expected)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.of_int 7 and b = Rng.of_int 7 in
  let xs = List.init 20 (fun _ -> Rng.bits a) in
  let ys = List.init 20 (fun _ -> Rng.bits b) in
  check intl "same seed same stream" xs ys

let test_rng_seed_sensitivity () =
  let a = Rng.of_int 7 and b = Rng.of_int 8 in
  let xs = List.init 20 (fun _ -> Rng.bits a) in
  let ys = List.init 20 (fun _ -> Rng.bits b) in
  check Alcotest.bool "different seeds differ" true (xs <> ys)

let test_rng_copy_split () =
  let a = Rng.of_int 1 in
  let b = Rng.copy a in
  check Alcotest.int "copy aligned" (Rng.bits a) (Rng.bits b);
  let c = Rng.split a in
  check Alcotest.bool "split diverges" true (Rng.bits a <> Rng.bits c)

let test_rng_int_range () =
  let rng = Rng.of_int 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 17 in
    if x < 0 || x >= 17 then Alcotest.fail "out of range"
  done;
  Alcotest.check_raises "n=0" (Invalid_argument "Rng.int") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.of_int 4 in
  for _ = 1 to 1000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "out of range"
  done

let test_rng_int_covers () =
  (* Every residue of a small modulus appears over a long run. *)
  let rng = Rng.of_int 5 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  check Alcotest.bool "all residues hit" true (Array.for_all Fun.id seen)

(* ------------------------------------------------------------------ *)
(* Dist *)

let mean_of l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let test_dist_poisson_mean () =
  let rng = Rng.of_int 11 in
  let n = 20_000 in
  let m = mean_of (List.init n (fun _ -> float_of_int (Dist.poisson rng 4.0))) in
  if abs_float (m -. 4.0) > 0.1 then
    Alcotest.failf "poisson mean %f too far from 4" m

let test_dist_poisson_large_mean () =
  let rng = Rng.of_int 12 in
  let n = 5_000 in
  let m = mean_of (List.init n (fun _ -> float_of_int (Dist.poisson rng 50.0))) in
  if abs_float (m -. 50.0) > 1.0 then
    Alcotest.failf "poisson(50) mean %f too far" m

let test_dist_exponential_mean () =
  let rng = Rng.of_int 13 in
  let n = 20_000 in
  let m = mean_of (List.init n (fun _ -> Dist.exponential rng 2.0)) in
  if abs_float (m -. 2.0) > 0.1 then Alcotest.failf "exp mean %f too far from 2" m

let test_dist_geometric () =
  let rng = Rng.of_int 14 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Dist.geometric rng 0.5) in
  List.iter (fun g -> if g < 0 then Alcotest.fail "negative geometric") samples;
  (* mean of failures-before-success = (1-p)/p = 1 *)
  let m = mean_of (List.map float_of_int samples) in
  if abs_float (m -. 1.0) > 0.1 then Alcotest.failf "geom mean %f too far from 1" m;
  check Alcotest.int "p=1 is always 0" 0 (Dist.geometric rng 1.0)

let test_dist_normal_moments () =
  let rng = Rng.of_int 15 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Dist.normal rng ~mean:3.0 ~stddev:2.0) in
  let m = mean_of samples in
  let var = mean_of (List.map (fun x -> (x -. m) ** 2.0) samples) in
  if abs_float (m -. 3.0) > 0.1 then Alcotest.failf "normal mean %f" m;
  if abs_float (var -. 4.0) > 0.3 then Alcotest.failf "normal var %f" var

let test_dist_normal_clamped () =
  let rng = Rng.of_int 16 in
  for _ = 1 to 2000 do
    let x = Dist.normal_clamped rng ~mean:0.5 ~stddev:0.7 ~lo:0.0 ~hi:1.0 in
    if x <= 0.0 || x >= 1.0 then Alcotest.fail "clamp violated"
  done

let test_dist_validation () =
  let rng = Rng.of_int 17 in
  Alcotest.check_raises "poisson" (Invalid_argument "Dist.poisson") (fun () ->
      ignore (Dist.poisson rng 0.0));
  Alcotest.check_raises "exponential" (Invalid_argument "Dist.exponential")
    (fun () -> ignore (Dist.exponential rng (-1.0)));
  Alcotest.check_raises "geometric" (Invalid_argument "Dist.geometric")
    (fun () -> ignore (Dist.geometric rng 0.0));
  Alcotest.check_raises "normal" (Invalid_argument "Dist.normal") (fun () ->
      ignore (Dist.normal rng ~mean:0.0 ~stddev:(-1.0)))

let test_dist_weighted_index () =
  let rng = Rng.of_int 18 in
  (* Index 1 has 90% of the mass. *)
  let w = [| 1.0; 18.0; 1.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Dist.weighted_index rng w in
    counts.(i) <- counts.(i) + 1
  done;
  check Alcotest.bool "heavy index dominates" true (counts.(1) > 8_000);
  check Alcotest.bool "light indices appear" true (counts.(0) > 100 && counts.(2) > 100);
  Alcotest.check_raises "empty" (Invalid_argument "Dist.weighted_index: empty")
    (fun () -> ignore (Dist.weighted_index rng [||]));
  Alcotest.check_raises "zero total"
    (Invalid_argument "Dist.weighted_index: zero total") (fun () ->
      ignore (Dist.weighted_index rng [| 0.0; 0.0 |]))

let test_dist_cdf_matches_weighted () =
  let rng = Rng.of_int 19 in
  let w = [| 5.0; 0.0; 3.0; 2.0 |] in
  let cdf = Dist.Cdf.of_weights w in
  check Alcotest.int "length" 4 (Dist.Cdf.length cdf);
  let counts = Array.make 4 0 in
  for _ = 1 to 20_000 do
    let i = Dist.Cdf.sample cdf rng in
    counts.(i) <- counts.(i) + 1
  done;
  check Alcotest.int "zero-weight index never drawn" 0 counts.(1);
  let frac i = float_of_int counts.(i) /. 20_000.0 in
  if abs_float (frac 0 -. 0.5) > 0.02 then Alcotest.fail "cdf index 0 frequency";
  if abs_float (frac 2 -. 0.3) > 0.02 then Alcotest.fail "cdf index 2 frequency";
  if abs_float (frac 3 -. 0.2) > 0.02 then Alcotest.fail "cdf index 3 frequency"

(* ------------------------------------------------------------------ *)
(* Timer.Counter *)

let test_counter () =
  let c = Counter.create "work" in
  check Alcotest.string "name" "work" (Counter.name c);
  check Alcotest.int "zero" 0 (Counter.value c);
  Counter.incr c;
  Counter.add c 5;
  check Alcotest.int "incr+add" 6 (Counter.value c);
  Alcotest.check_raises "negative add" (Invalid_argument "Timer.Counter.add")
    (fun () -> Counter.add c (-1));
  Counter.reset c;
  check Alcotest.int "reset" 0 (Counter.value c);
  (* the ?work threading helper: None is a no-op, Some increments *)
  Counter.bump None;
  Counter.bump (Some c);
  Counter.bump (Some c);
  check Alcotest.int "bump" 2 (Counter.value c)

(* [monotonic_s] is a high-water mark over the wall clock: consecutive
   reads never decrease, even from several domains racing the CAS loop
   (a wall-clock regression in one domain must not surface as time
   going backwards in another). *)
let test_timer_monotonic () =
  let worker () =
    let last = ref (Olar_util.Timer.monotonic_s ()) in
    for _ = 1 to 10_000 do
      let t = Olar_util.Timer.monotonic_s () in
      if t < !last then
        Alcotest.failf "monotonic_s went backwards: %.17g -> %.17g" !last t;
      last := t
    done
  in
  let domains = Array.init 4 (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains

let test_timer_elapsed () =
  let t = Olar_util.Timer.start () in
  let x = ref 0 in
  for i = 1 to 100_000 do
    x := !x + i
  done;
  check Alcotest.bool "monotone" true (Olar_util.Timer.elapsed_s t >= 0.0);
  let y, dt = Olar_util.Timer.time (fun () -> 42) in
  check Alcotest.int "time result" 42 y;
  check Alcotest.bool "time nonneg" true (dt >= 0.0)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "util.vec",
      [
        case "empty" test_vec_empty;
        case "push/get/set" test_vec_push_get;
        case "bounds" test_vec_bounds;
        case "pop/last" test_vec_pop_last;
        case "clear/reuse" test_vec_clear_reuse;
        case "iterators" test_vec_iterators;
        case "sort" test_vec_sort;
        case "append" test_vec_append;
        case "init/make" test_vec_init_make;
        case "float elements" test_vec_float_elements;
        QCheck_alcotest.to_alcotest vec_roundtrip_prop;
        QCheck_alcotest.to_alcotest vec_push_pop_prop;
      ] );
    ( "util.heap",
      [
        case "basic" test_heap_basic;
        case "max order" test_heap_max_order;
        case "duplicates" test_heap_duplicates;
        case "pop_exn" test_heap_pop_exn;
        case "clear" test_heap_clear;
        QCheck_alcotest.to_alcotest heap_sort_prop;
        QCheck_alcotest.to_alcotest heap_interleaved_prop;
      ] );
    ( "util.bitset",
      [
        case "basic" test_bitset_basic;
        case "idempotent" test_bitset_idempotent;
        case "bounds" test_bitset_bounds;
        case "clear/copy" test_bitset_clear_copy;
        case "zero capacity" test_bitset_zero_capacity;
        QCheck_alcotest.to_alcotest bitset_model_prop;
      ] );
    ( "util.rng",
      [
        case "deterministic" test_rng_deterministic;
        case "seed sensitivity" test_rng_seed_sensitivity;
        case "copy/split" test_rng_copy_split;
        case "int range" test_rng_int_range;
        case "float range" test_rng_float_range;
        case "int covers residues" test_rng_int_covers;
      ] );
    ( "util.dist",
      [
        case "poisson mean" test_dist_poisson_mean;
        case "poisson large mean" test_dist_poisson_large_mean;
        case "exponential mean" test_dist_exponential_mean;
        case "geometric" test_dist_geometric;
        case "normal moments" test_dist_normal_moments;
        case "normal clamped" test_dist_normal_clamped;
        case "validation" test_dist_validation;
        case "weighted index" test_dist_weighted_index;
        case "cdf sampling" test_dist_cdf_matches_weighted;
      ] );
    ( "util.timer",
      [
        case "counter" test_counter;
        case "elapsed" test_timer_elapsed;
        case "monotonic clock" test_timer_monotonic;
      ] );
  ]
