(* The workload log (lib/replay): FNV digest determinism and hex
   round-trips, the jsonl record codec over every query kind, recorder
   accounting (seq, cache path, slow-query filter, raising queries), a
   digest-stability property across engine rebuilds and cached vs
   uncached execution, and the capture -> replay round trip including
   mid-stream appends and tamper detection. *)

open Olar_data
open Olar_core
module Session = Olar_serve.Session
module Fnv = Olar_replay.Fnv
module Record = Olar_replay.Record
module Recorder = Olar_replay.Recorder
module Replay = Olar_replay.Replay

let check = Alcotest.check
let set = Itemset.of_list

(* ------------------------------------------------------------------ *)
(* Fnv *)

let test_fnv_basics () =
  (* the empty digest is the published FNV-1a 64-bit offset basis *)
  check Alcotest.string "empty = offset basis" "cbf29ce484222325"
    (Fnv.to_hex Fnv.empty);
  check Alcotest.bool "folding is pure" true
    (Int64.equal (Fnv.int Fnv.empty 7) (Fnv.int Fnv.empty 7));
  let h1 = Fnv.int (Fnv.itemset Fnv.empty (set [ 1; 3 ])) 7 in
  let h2 = Fnv.int (Fnv.itemset Fnv.empty (set [ 3; 1 ])) 7 in
  check Alcotest.bool "itemsets fold in canonical item order" true
    (Int64.equal h1 h2);
  check Alcotest.bool "different input, different hash" false
    (Int64.equal h1 (Fnv.int (Fnv.itemset Fnv.empty (set [ 1; 3 ])) 8));
  check Alcotest.bool "order-sensitive over the fold" false
    (Int64.equal
       (Fnv.int (Fnv.int Fnv.empty 1) 2)
       (Fnv.int (Fnv.int Fnv.empty 2) 1))

let test_fnv_hex_roundtrip () =
  let samples =
    [ Fnv.empty; Fnv.int Fnv.empty 42; Fnv.float Fnv.empty (-0.125);
      Fnv.itemset Fnv.empty (set [ 0; 7 ]); Int64.minus_one; 0L ]
  in
  List.iter
    (fun h ->
      match Fnv.of_hex (Fnv.to_hex h) with
      | Some h' -> check Alcotest.bool "hex round-trip" true (Int64.equal h h')
      | None -> Alcotest.failf "of_hex rejected %s" (Fnv.to_hex h))
    samples;
  List.iter
    (fun bad ->
      match Fnv.of_hex bad with
      | None -> ()
      | Some _ -> Alcotest.failf "of_hex accepted %S" bad)
    [ ""; "123"; "xyzxyzxyzxyzxyzx"; "cbf29ce484222325ff"; "0xcbf29ce4842223" ]

(* ------------------------------------------------------------------ *)
(* Record codec *)

let base_record kind =
  {
    Record.seq = 3;
    kind;
    containing = set [ 2; 5 ];
    antecedent_includes = Itemset.empty;
    consequent_includes = Itemset.empty;
    allow_empty_antecedent = false;
    minsup = Some 0.0123;
    minconf = None;
    k = None;
    delta = [];
    delta_num_items = 0;
    cache = Record.Miss;
    digest = Fnv.int Fnv.empty 99;
    result_size = 17;
    latency_s = 0.00042;
    vertices = 1234;
    heap_pops = 0;
    epoch = 2;
  }

let variants =
  [
    base_record Record.Find_itemsets;
    { (base_record Record.Count_itemsets) with containing = Itemset.empty };
    {
      (base_record Record.Essential_rules) with
      minconf = Some 0.75;
      antecedent_includes = set [ 1 ];
      consequent_includes = set [ 4 ];
      allow_empty_antecedent = true;
      cache = Record.Hit;
    };
    { (base_record Record.All_rules) with minconf = Some 0.5 };
    {
      (base_record Record.Single_consequent_rules) with
      minconf = Some 1.0;
      cache = Record.Refine;
    };
    { (base_record Record.Support_for_k_itemsets) with minsup = None; k = Some 10 };
    {
      (base_record Record.Support_for_k_rules) with
      minsup = None;
      minconf = Some 0.3;
      k = Some 5;
      cache = Record.Passthrough;
    };
    { (base_record Record.Boundary) with minsup = None; minconf = Some 0.9 };
    {
      (base_record Record.Append) with
      minsup = None;
      containing = Itemset.empty;
      delta = [ [ 0; 2 ]; []; [ 1 ] ];
      delta_num_items = 6;
      cache = Record.Passthrough;
    };
  ]

let test_record_roundtrip () =
  List.iter
    (fun (r : Record.t) ->
      let line = Record.to_json_line r in
      match Record.of_json_line line with
      | Error e ->
        Alcotest.failf "%s does not re-parse: %s"
          (Record.kind_to_string r.Record.kind)
          e
      | Ok r' ->
        check Alcotest.string
          ("stable encoding for " ^ Record.kind_to_string r.Record.kind)
          line (Record.to_json_line r');
        check Alcotest.bool "digest preserved exactly" true
          (Int64.equal r.Record.digest r'.Record.digest);
        check Alcotest.bool "latency preserved exactly" true
          (r.Record.latency_s = r'.Record.latency_s);
        check Alcotest.bool "itemset preserved" true
          (Itemset.equal r.Record.containing r'.Record.containing);
        check Alcotest.bool "delta preserved" true (r.Record.delta = r'.Record.delta))
    variants

let test_record_rejects_malformed () =
  let good = Record.to_json_line (base_record Record.Find_itemsets) in
  List.iter
    (fun bad ->
      match Record.of_json_line bad with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed line %S" bad)
    [
      "";
      "not json";
      "{}";
      {|{"v":2,"seq":0,"kind":"find","digest":"cbf29ce484222325","size":0,"lat_s":0,"vertices":0,"pops":0,"epoch":1,"cache":"pass"}|};
      {|{"v":1,"seq":0,"kind":"warp","digest":"cbf29ce484222325","size":0,"lat_s":0,"vertices":0,"pops":0,"epoch":1,"cache":"pass"}|};
      {|{"v":1,"seq":0,"kind":"find","digest":"zz","size":0,"lat_s":0,"vertices":0,"pops":0,"epoch":1,"cache":"pass"}|};
      {|{"v":1,"seq":0,"kind":"find","digest":"cbf29ce484222325","size":0,"lat_s":0,"vertices":0,"pops":0,"epoch":1,"cache":"sideways"}|};
    ];
  match Record.of_json_line good with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "golden line rejected: %s" e

(* ------------------------------------------------------------------ *)
(* Recorder accounting *)

let recording_session ?(budget_bytes = 1 lsl 20) () =
  let engine = Engine.of_lattice (Helpers.table2_lattice ()) in
  Session.create ~budget_bytes engine

(* db_size 1000 in the Table 2 fixture *)
let f c = float_of_int c /. 1000.0

let test_recorder_accounting () =
  let session = recording_session () in
  let out = ref [] in
  let recorder = Recorder.create ~emit:(fun r -> out := r :: !out) session in
  ignore (Recorder.itemset_ids recorder ~minsup:(f 3));
  ignore (Recorder.itemset_ids recorder ~minsup:(f 10));
  ignore (Recorder.count_itemsets recorder ~minsup:(f 3));
  ignore (Recorder.boundary recorder ~target:(set [ 1 ]) ~minconf:0.5);
  match List.rev !out with
  | [ a; b; c; d ] ->
    check Alcotest.int "seq 0" 0 a.Record.seq;
    check Alcotest.int "seq 3" 3 d.Record.seq;
    check Alcotest.string "cold find misses" "miss"
      (Record.cache_path_to_string a.Record.cache);
    check Alcotest.string "narrower cut refines" "refine"
      (Record.cache_path_to_string b.Record.cache);
    check Alcotest.string "count rides the cached prefix" "hit"
      (Record.cache_path_to_string c.Record.cache);
    check Alcotest.string "boundary is passthrough" "pass"
      (Record.cache_path_to_string d.Record.cache);
    check Alcotest.int "find size is the id count" 9 a.Record.result_size;
    check Alcotest.bool "count digest hashes the number" true
      (Int64.equal c.Record.digest (Olar_replay.Fnv.int Fnv.empty 9));
    check Alcotest.int "recorder counted them" 4 (Recorder.count recorder)
  | l -> Alcotest.failf "expected 4 records, got %d" (List.length l)

let test_recorder_slow_filter () =
  let session = recording_session () in
  let out = ref [] in
  let now = ref 0.0 in
  let recorder =
    Recorder.create ~slow_s:0.5
      ~clock:(fun () -> !now)
      ~emit:(fun r -> out := r :: !out)
      session
  in
  ignore (Recorder.count_itemsets recorder ~minsup:(f 3));
  check Alcotest.int "fast query filtered" 0 (List.length !out);
  check Alcotest.int "but still numbered" 1 (Recorder.count recorder);
  (* make the next query appear slow to the recorder's clock *)
  let slow_session = recording_session () in
  let slow_out = ref [] in
  let t = ref 0.0 in
  let ticking =
    (* each clock call advances by 0.4s, so one query spans 0.4s < 0.5
       and two nested reads push the second query over the threshold *)
    Recorder.create ~slow_s:0.3
      ~clock:(fun () ->
        let v = !t in
        t := v +. 0.4;
        v)
      ~emit:(fun r -> slow_out := r :: !slow_out)
      slow_session
  in
  ignore (Recorder.count_itemsets ticking ~minsup:(f 3));
  (match !slow_out with
  | [ r ] ->
    check Alcotest.int "slow query emitted with its seq" 0 r.Record.seq;
    check (Alcotest.float 1e-9) "latency from the recorder clock" 0.4
      r.Record.latency_s
  | l -> Alcotest.failf "expected 1 slow record, got %d" (List.length l));
  (* a raising query emits nothing and does not consume a seq *)
  let raising = recording_session () in
  let r_out = ref [] in
  let rec_r = Recorder.create ~emit:(fun r -> r_out := r :: !r_out) raising in
  (try
     ignore
       (Recorder.itemset_ids rec_r ~minsup:(0.5 /. 1000.0) (* below primary *))
   with Query.Below_primary_threshold _ -> ());
  check Alcotest.int "nothing emitted" 0 (List.length !r_out);
  check Alcotest.int "seq not consumed" 0 (Recorder.count rec_r)

(* A clock that steps backwards mid-query (NTP adjustment, VM
   migration) must never yield a negative latency: the recorder clamps
   at zero. The default clock is [Timer.monotonic_s], which cannot
   regress at all, so this exercises the belt-and-braces clamp behind
   an injected wall clock. *)
let test_recorder_backwards_clock () =
  let session = recording_session () in
  let out = ref [] in
  (* t0 = 10.0 at query start, then the clock jumps back to 4.0 *)
  let times = ref [ 10.0; 4.0 ] in
  let clock () =
    match !times with
    | [] -> 4.0
    | t :: rest ->
      times := rest;
      t
  in
  let recorder =
    Recorder.create ~clock ~emit:(fun r -> out := r :: !out) session
  in
  ignore (Recorder.count_itemsets recorder ~minsup:(f 3));
  match !out with
  | [ r ] ->
    check (Alcotest.float 0.0) "latency clamped to zero, not -6s" 0.0
      r.Record.latency_s
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Digest stability property *)

let digest_of_db db ~session_of (minsup_count, containing, minconf) =
  let session = session_of db in
  let out = ref [] in
  let recorder = Recorder.create ~emit:(fun r -> out := r :: !out) session in
  let minsup_count = min minsup_count (Database.size db) in
  let minsup = float_of_int minsup_count /. float_of_int (Database.size db) in
  ignore (Recorder.itemset_ids ~containing recorder ~minsup);
  ignore (Recorder.essential_rules ~containing recorder ~minsup ~minconf);
  ignore (Recorder.count_itemsets ~containing recorder ~minsup);
  ignore (Recorder.support_for_k_itemsets recorder ~containing ~k:3);
  List.rev_map (fun r -> r.Record.digest) !out

let digest_scenario_gen =
  let open QCheck2.Gen in
  let* db = Helpers.db_gen in
  let* containing = Helpers.itemset_gen ~num_items:(Database.num_items db) in
  let* minsup_count = int_range 1 5 in
  let* minconf = oneofl [ 0.25; 0.5; 0.9 ] in
  return (db, (minsup_count, containing, minconf))

let digest_stability_prop =
  QCheck2.Test.make
    ~name:"replay: digests stable across rebuilds, scratch and caching"
    ~count:150
    ~print:(fun (db, (c, x, m)) ->
      Format.asprintf "%s minsup_count=%d containing=%a minconf=%g"
        (Helpers.db_print db) c Itemset.pp x m)
    digest_scenario_gen
    (fun (db, query) ->
      let uncached db = Session.create ~budget_bytes:0 (Helpers.full_engine db) in
      let cached db =
        Session.create ~budget_bytes:(1 lsl 20) (Helpers.full_engine db)
      in
      let a = digest_of_db db ~session_of:uncached query in
      (* a fresh engine rebuild (new lattice, new scratch) ... *)
      let b = digest_of_db db ~session_of:uncached query in
      (* ... and a cached session over yet another rebuild *)
      let c = digest_of_db db ~session_of:cached query in
      List.for_all2 Int64.equal a b && List.for_all2 Int64.equal a c)

(* ------------------------------------------------------------------ *)
(* Replay round trip *)

let capture_workload session =
  let out = ref [] in
  let recorder = Recorder.create ~emit:(fun r -> out := r :: !out) session in
  ignore (Recorder.itemset_ids recorder ~minsup:(f 3));
  ignore (Recorder.essential_rules recorder ~minsup:(f 3) ~minconf:0.5);
  ignore (Recorder.boundary recorder ~target:(set [ 1 ]) ~minconf:0.5);
  (* mid-stream maintenance bumps supports for later queries *)
  ignore
    (Recorder.append recorder
       (Database.of_lists ~num_items:6 [ [ 1; 2 ]; [ 1; 2; 3 ] ]));
  ignore (Recorder.itemset_ids recorder ~minsup:(f 3));
  ignore (Recorder.count_itemsets recorder ~minsup:(f 10));
  ignore (Recorder.support_for_k_itemsets recorder ~containing:Itemset.empty ~k:4);
  List.rev !out

let test_replay_roundtrip () =
  let records = capture_workload (recording_session ()) in
  check Alcotest.int "captured the workload" 7 (List.length records);
  (* a fresh session over a fresh engine replays with zero mismatches,
     both uncached and cached *)
  List.iter
    (fun budget_bytes ->
      let report =
        Replay.run (recording_session ~budget_bytes ()) records
      in
      check Alcotest.int "total" 7 report.Replay.total;
      check Alcotest.int "mismatches" 0 report.Replay.mismatches;
      check Alcotest.int "errors" 0 report.Replay.errors)
    [ 0; 1 lsl 20 ];
  (* the jsonl round trip preserves replayability *)
  let path = Filename.temp_file "olar_test_replay" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out path in
      List.iter
        (fun r ->
          output_string oc (Record.to_json_line r);
          output_char oc '\n')
        records;
      close_out oc;
      match Replay.load path with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok loaded ->
        let report = Replay.run (recording_session ()) loaded in
        check Alcotest.int "loaded log replays clean" 0
          report.Replay.mismatches)

let test_replay_detects_tampering () =
  let records = capture_workload (recording_session ()) in
  let tampered =
    List.mapi
      (fun i (r : Record.t) ->
        if i = 4 then { r with Record.digest = Int64.lognot r.Record.digest }
        else r)
      records
  in
  let seen = ref [] in
  let report =
    Replay.run
      ~on_outcome:(fun o -> if not o.Replay.ok then seen := o :: !seen)
      (recording_session ()) tampered
  in
  check Alcotest.int "exactly the tampered record mismatches" 1
    report.Replay.mismatches;
  check Alcotest.int "no replay errors" 0 report.Replay.errors;
  (match !seen with
  | [ o ] -> check Alcotest.int "outcome points at seq 4" 4 o.Replay.record.Record.seq
  | l -> Alcotest.failf "expected 1 failing outcome, got %d" (List.length l));
  (* a structurally broken record is an error, not a crash *)
  let broken =
    List.mapi
      (fun i (r : Record.t) ->
        if i = 0 then { r with Record.minsup = None } else r)
      records
  in
  let report = Replay.run (recording_session ()) broken in
  check Alcotest.int "broken record is an error" 1 report.Replay.errors;
  check Alcotest.int "and counts as a mismatch" 1 report.Replay.mismatches

(* The same captured log, replayed through a 4-domain pool: appends
   barrier the batch, so every digest must still match the capture at
   both cache budgets. *)
let test_replay_pool_roundtrip () =
  let records = capture_workload (recording_session ()) in
  List.iter
    (fun budget_bytes ->
      let engine = Engine.of_lattice (Helpers.table2_lattice ()) in
      Olar_serve.Pool.with_pool ~domains:4 ~budget_bytes engine (fun pool ->
          let report = Replay.run_pool pool records in
          check Alcotest.int "total" 7 report.Replay.total;
          check Alcotest.int "pool replay mismatches" 0
            report.Replay.mismatches;
          check Alcotest.int "errors" 0 report.Replay.errors))
    [ 0; 1 lsl 20 ]

let case name fn = Alcotest.test_case name `Quick fn

let suites =
  [
    ( "replay.fnv",
      [ case "basics" test_fnv_basics; case "hex round-trip" test_fnv_hex_roundtrip ]
    );
    ( "replay.record",
      [
        case "jsonl round-trip per kind" test_record_roundtrip;
        case "malformed rejected" test_record_rejects_malformed;
      ] );
    ( "replay.recorder",
      [
        case "accounting" test_recorder_accounting;
        case "slow filter and raises" test_recorder_slow_filter;
        case "backwards clock clamps latency" test_recorder_backwards_clock;
      ] );
    ( "replay.replay",
      [
        case "capture/replay round trip" test_replay_roundtrip;
        case "tamper detection" test_replay_detects_tampering;
        case "pool replay round trip" test_replay_pool_roundtrip;
      ] );
    Helpers.qsuite "replay.digest" [ digest_stability_prop ];
  ]
