(* Tests for olar.data: Item, Itemset, Database, Tidlist, Db_io. *)

open Olar_data

let check = Alcotest.check
let set = Itemset.of_list
let itemset = Helpers.itemset
let itemsetl = Alcotest.list itemset

(* ------------------------------------------------------------------ *)
(* Item.Vocab *)

let test_vocab_intern () =
  let v = Item.Vocab.create () in
  let bread = Item.Vocab.intern v "bread" in
  let milk = Item.Vocab.intern v "milk" in
  check Alcotest.int "first id" 0 bread;
  check Alcotest.int "second id" 1 milk;
  check Alcotest.int "re-intern" bread (Item.Vocab.intern v "bread");
  check Alcotest.int "size" 2 (Item.Vocab.size v);
  check Alcotest.string "name" "milk" (Item.Vocab.name v milk);
  check (Alcotest.option Alcotest.int) "id" (Some 0) (Item.Vocab.id v "bread");
  check (Alcotest.option Alcotest.int) "missing" None (Item.Vocab.id v "eggs");
  check (Alcotest.list Alcotest.string) "names" [ "bread"; "milk" ]
    (Item.Vocab.names v)

let test_vocab_save_load () =
  let v = Item.Vocab.of_names [ "bread"; "milk"; "eggs" ] in
  let path = Filename.temp_file "olar_vocab" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Item.Vocab.save v path;
      let back = Item.Vocab.load path in
      check (Alcotest.list Alcotest.string) "names survive"
        (Item.Vocab.names v) (Item.Vocab.names back);
      check (Alcotest.option Alcotest.int) "ids stable" (Some 1)
        (Item.Vocab.id back "milk"))

let test_vocab_of_names () =
  let v = Item.Vocab.of_names [ "a"; "b"; "c" ] in
  check Alcotest.int "size" 3 (Item.Vocab.size v);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Item.Vocab.of_names: duplicate") (fun () ->
      ignore (Item.Vocab.of_names [ "a"; "a" ]));
  Alcotest.check_raises "bad id"
    (Invalid_argument "Item.Vocab.name: unregistered id") (fun () ->
      ignore (Item.Vocab.name v 3))

(* ------------------------------------------------------------------ *)
(* Itemset: construction and observation *)

let test_itemset_construction () =
  check itemset "of_list sorts" (set [ 1; 2; 3 ]) (Itemset.of_list [ 3; 1; 2 ]);
  check itemset "of_list dedups" (set [ 1; 2 ]) (Itemset.of_list [ 2; 1; 2; 1 ]);
  check itemset "of_array" (set [ 0; 5 ]) (Itemset.of_array [| 5; 0; 5 |]);
  check itemset "empty" Itemset.empty (set []);
  check Alcotest.int "cardinal" 3 (Itemset.cardinal (set [ 4; 5; 6 ]));
  check Alcotest.bool "is_empty" true (Itemset.is_empty Itemset.empty);
  Alcotest.check_raises "negative" (Invalid_argument "Itemset.singleton")
    (fun () -> ignore (Itemset.singleton (-1)));
  Alcotest.check_raises "negative in list" (Invalid_argument "Itemset.of_array")
    (fun () -> ignore (Itemset.of_list [ 1; -2 ]))

let test_itemset_observation () =
  let x = set [ 2; 5; 9 ] in
  check Alcotest.bool "mem yes" true (Itemset.mem 5 x);
  check Alcotest.bool "mem no" false (Itemset.mem 4 x);
  check Alcotest.int "nth" 5 (Itemset.nth x 1);
  check Alcotest.int "min" 2 (Itemset.min_item x);
  check Alcotest.int "max" 9 (Itemset.max_item x);
  check (Alcotest.list Alcotest.int) "to_list" [ 2; 5; 9 ] (Itemset.to_list x);
  check Alcotest.int "fold" 16 (Itemset.fold ( + ) x 0);
  Alcotest.check_raises "nth oob" (Invalid_argument "Itemset.nth") (fun () ->
      ignore (Itemset.nth x 3));
  Alcotest.check_raises "min of empty" (Invalid_argument "Itemset.min_item")
    (fun () -> ignore (Itemset.min_item Itemset.empty))

let test_itemset_algebra () =
  let x = set [ 1; 3; 5 ] and y = set [ 3; 4; 5; 7 ] in
  check itemset "union" (set [ 1; 3; 4; 5; 7 ]) (Itemset.union x y);
  check itemset "inter" (set [ 3; 5 ]) (Itemset.inter x y);
  check itemset "diff" (set [ 1 ]) (Itemset.diff x y);
  check itemset "diff rev" (set [ 4; 7 ]) (Itemset.diff y x);
  check itemset "add new" (set [ 1; 2; 3; 5 ]) (Itemset.add 2 x);
  check itemset "add existing" x (Itemset.add 3 x);
  check itemset "remove" (set [ 1; 5 ]) (Itemset.remove 3 x);
  check itemset "remove absent" x (Itemset.remove 9 x);
  check itemset "union empty" x (Itemset.union x Itemset.empty);
  check itemset "inter empty" Itemset.empty (Itemset.inter x Itemset.empty)

let test_itemset_relations () =
  let x = set [ 1; 3 ] and y = set [ 1; 2; 3 ] in
  check Alcotest.bool "subset" true (Itemset.subset x y);
  check Alcotest.bool "subset self" true (Itemset.subset x x);
  check Alcotest.bool "subset no" false (Itemset.subset y x);
  check Alcotest.bool "strict" true (Itemset.strict_subset x y);
  check Alcotest.bool "strict self" false (Itemset.strict_subset x x);
  check Alcotest.bool "empty subset" true (Itemset.subset Itemset.empty x);
  check Alcotest.bool "disjoint" true (Itemset.disjoint x (set [ 0; 2 ]));
  check Alcotest.bool "not disjoint" false (Itemset.disjoint x y)

let test_itemset_parents () =
  let x = set [ 1; 4; 7 ] in
  let ps = Itemset.parents x in
  check Alcotest.int "three parents" 3 (List.length ps);
  check
    (Alcotest.list (Alcotest.pair Alcotest.int itemset))
    "parents"
    [ (1, set [ 4; 7 ]); (4, set [ 1; 7 ]); (7, set [ 1; 4 ]) ]
    ps;
  check
    (Alcotest.list (Alcotest.pair Alcotest.int itemset))
    "singleton parent"
    [ (3, Itemset.empty) ]
    (Itemset.parents (set [ 3 ]))

let test_itemset_subsets () =
  let x = set [ 1; 2; 3 ] in
  let subs = Itemset.subsets x in
  check Alcotest.int "2^3 subsets" 8 (List.length subs);
  check Alcotest.bool "has empty" true (List.exists Itemset.is_empty subs);
  check Alcotest.bool "has self" true (List.exists (Itemset.equal x) subs);
  let proper = Itemset.proper_nonempty_subsets x in
  check Alcotest.int "proper nonempty" 6 (List.length proper);
  List.iter
    (fun s ->
      check Alcotest.bool "strict subset" true (Itemset.strict_subset s x))
    proper;
  check itemsetl "subsets of empty" [ Itemset.empty ] (Itemset.subsets Itemset.empty)

let test_itemset_order_hash () =
  check Alcotest.bool "compare by cardinality first" true
    (Itemset.compare (set [ 9 ]) (set [ 0; 1 ]) < 0);
  check Alcotest.bool "lex within level" true
    (Itemset.compare (set [ 0; 9 ]) (set [ 1; 2 ]) < 0);
  check Alcotest.bool "compare_lex prefix" true
    (Itemset.compare_lex (set [ 0 ]) (set [ 0; 1 ]) < 0);
  check Alcotest.bool "compare_lex ignores cardinality" true
    (Itemset.compare_lex (set [ 0; 9 ]) (set [ 1 ]) < 0);
  check Alcotest.int "equal compare" 0 (Itemset.compare (set [ 1; 2 ]) (set [ 2; 1 ]));
  check Alcotest.bool "hash equal sets" true
    (Itemset.hash (set [ 1; 2 ]) = Itemset.hash (set [ 2; 1 ]));
  check Alcotest.string "to_string" "{1,2,3}" (Itemset.to_string (set [ 3; 2; 1 ]));
  check Alcotest.string "empty to_string" "{}" (Itemset.to_string Itemset.empty)

let test_itemset_pp_named () =
  let v = Item.Vocab.of_names [ "bread"; "milk"; "eggs" ] in
  check Alcotest.string "named" "{bread,eggs}"
    (Format.asprintf "%a" (Itemset.pp_named v) (set [ 0; 2 ]))

let test_itemset_containers () =
  let tbl = Itemset.Table.create 4 in
  Itemset.Table.replace tbl (set [ 1; 2 ]) "a";
  check (Alcotest.option Alcotest.string) "table" (Some "a")
    (Itemset.Table.find_opt tbl (set [ 2; 1 ]));
  let m = Itemset.Map.singleton (set [ 3 ]) 7 in
  check (Alcotest.option Alcotest.int) "map" (Some 7)
    (Itemset.Map.find_opt (set [ 3 ]) m);
  let s = Itemset.Set.of_list [ set [ 1 ]; set [ 1 ]; set [ 2 ] ] in
  check Alcotest.int "set dedup" 2 (Itemset.Set.cardinal s)

(* qcheck properties over itemset algebra *)

let small_set_gen =
  QCheck2.Gen.(map Itemset.of_list (list_size (int_range 0 8) (int_range 0 15)))

let pair_gen = QCheck2.Gen.pair small_set_gen small_set_gen

let prop name f = QCheck2.Test.make ~name ~count:500 pair_gen f

let itemset_props =
  [
    prop "union is commutative" (fun (x, y) ->
        Itemset.equal (Itemset.union x y) (Itemset.union y x));
    prop "inter is commutative" (fun (x, y) ->
        Itemset.equal (Itemset.inter x y) (Itemset.inter y x));
    prop "union contains both" (fun (x, y) ->
        let u = Itemset.union x y in
        Itemset.subset x u && Itemset.subset y u);
    prop "inter contained in both" (fun (x, y) ->
        let i = Itemset.inter x y in
        Itemset.subset i x && Itemset.subset i y);
    prop "diff disjoint from subtrahend" (fun (x, y) ->
        Itemset.disjoint (Itemset.diff x y) y);
    prop "diff + inter partition" (fun (x, y) ->
        Itemset.equal x (Itemset.union (Itemset.diff x y) (Itemset.inter x y)));
    prop "inclusion-exclusion cardinalities" (fun (x, y) ->
        Itemset.cardinal (Itemset.union x y) + Itemset.cardinal (Itemset.inter x y)
        = Itemset.cardinal x + Itemset.cardinal y);
    prop "subset agrees with diff" (fun (x, y) ->
        Itemset.subset x y = Itemset.is_empty (Itemset.diff x y));
    prop "disjoint agrees with inter" (fun (x, y) ->
        Itemset.disjoint x y = Itemset.is_empty (Itemset.inter x y));
    prop "compare total order antisymmetric" (fun (x, y) ->
        let c = Itemset.compare x y and c' = Itemset.compare y x in
        (c = 0 && c' = 0 && Itemset.equal x y) || c * c' < 0);
    QCheck2.Test.make ~name:"mem agrees with to_list" ~count:500
      QCheck2.Gen.(pair small_set_gen (int_range 0 15))
      (fun (x, i) -> Itemset.mem i x = List.mem i (Itemset.to_list x));
    QCheck2.Test.make ~name:"add then remove restores" ~count:500
      QCheck2.Gen.(pair small_set_gen (int_range 0 15))
      (fun (x, i) ->
        QCheck2.assume (not (Itemset.mem i x));
        Itemset.equal x (Itemset.remove i (Itemset.add i x)));
    QCheck2.Test.make ~name:"parents have cardinality-1 and are subsets"
      ~count:500 small_set_gen (fun x ->
        List.for_all
          (fun (i, p) ->
            Itemset.cardinal p = Itemset.cardinal x - 1
            && Itemset.subset p x
            && Itemset.mem i x && not (Itemset.mem i p))
          (Itemset.parents x));
  ]

(* ------------------------------------------------------------------ *)
(* Database *)

let test_database_basic () =
  let db = Helpers.small_db () in
  check Alcotest.int "size" 10 (Database.size db);
  check Alcotest.int "num_items" 5 (Database.num_items db);
  check itemset "get" (set [ 0; 1; 2; 3 ]) (Database.get db 4);
  Alcotest.check_raises "get oob" (Invalid_argument "Database.get") (fun () ->
      ignore (Database.get db 10))

let test_database_validation () =
  Alcotest.check_raises "bad item"
    (Invalid_argument "Database.create: item id out of range") (fun () ->
      ignore (Database.of_lists ~num_items:3 [ [ 0; 3 ] ]));
  Alcotest.check_raises "bad num_items"
    (Invalid_argument "Database.create: num_items") (fun () ->
      ignore (Database.of_lists ~num_items:0 []))

let test_database_support () =
  let db = Helpers.small_db () in
  check Alcotest.int "item 0" 6 (Database.support_count db (set [ 0 ]));
  check Alcotest.int "pair 0,1" 4 (Database.support_count db (set [ 0; 1 ]));
  check Alcotest.int "triple" 3 (Database.support_count db (set [ 0; 1; 2 ]));
  check Alcotest.int "absent" 0 (Database.support_count db (set [ 3; 4 ]));
  check Alcotest.int "empty set" 10 (Database.support_count db Itemset.empty);
  check (Alcotest.float 1e-9) "fraction" 0.4 (Database.support db (set [ 0; 1 ]))

let test_database_aggregates () =
  let db = Helpers.small_db () in
  check (Alcotest.float 1e-9) "avg size" 2.3 (Database.avg_transaction_size db);
  check (Alcotest.array Alcotest.int) "item frequencies" [| 6; 6; 6; 4; 1 |]
    (Database.item_frequencies db);
  check Alcotest.int "fold count" 10 (Database.fold (fun n _ -> n + 1) 0 db);
  let tids = ref [] in
  Database.iteri (fun tid _ -> tids := tid :: !tids) db;
  check Alcotest.int "iteri covers" 10 (List.length !tids)

let test_database_count_of_fraction () =
  let db = Helpers.small_db () in
  check Alcotest.int "half" 5 (Database.count_of_fraction db 0.5);
  check Alcotest.int "rounds up" 3 (Database.count_of_fraction db 0.21);
  check Alcotest.int "zero floors to 1" 1 (Database.count_of_fraction db 0.0);
  check Alcotest.int "one" 10 (Database.count_of_fraction db 1.0);
  Alcotest.check_raises "above one"
    (Invalid_argument "Database.count_of_fraction") (fun () ->
      ignore (Database.count_of_fraction db 1.5))

(* ------------------------------------------------------------------ *)
(* Tidlist *)

let test_tidlist_matches_scan () =
  let db = Helpers.small_db () in
  let idx = Tidlist.build db in
  check Alcotest.int "num_items" 5 (Tidlist.num_items idx);
  check Alcotest.int "num_transactions" 10 (Tidlist.num_transactions idx);
  List.iter
    (fun x ->
      check Alcotest.int
        (Format.asprintf "support %a" Itemset.pp x)
        (Database.support_count db x) (Tidlist.support_count idx x))
    (Helpers.all_nonempty_itemsets db);
  check Alcotest.int "empty itemset" 10 (Tidlist.support_count idx Itemset.empty)

let test_tidlist_tids () =
  let db = Helpers.small_db () in
  let idx = Tidlist.build db in
  check (Alcotest.array Alcotest.int) "tids of 3" [| 4; 5; 6; 7 |]
    (Tidlist.tids idx 3);
  check Alcotest.int "item_support" 4 (Tidlist.item_support idx 3);
  Alcotest.check_raises "oob" (Invalid_argument "Tidlist.tids") (fun () ->
      ignore (Tidlist.tids idx 5))

let tidlist_prop =
  QCheck2.Test.make ~name:"tidlist: support equals full scan" ~count:100
    ~print:(fun (db, x) -> Helpers.db_print db ^ " / " ^ Itemset.to_string x)
    Helpers.db_and_itemset_gen
    (fun (db, x) ->
      Tidlist.support_count (Tidlist.build db) x = Database.support_count db x)

(* ------------------------------------------------------------------ *)
(* Db_io *)

let test_db_io_roundtrip () =
  let db = Helpers.small_db () in
  let path = Filename.temp_file "olar" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Db_io.save db path;
      let back = Db_io.load path in
      check Alcotest.int "size" (Database.size db) (Database.size back);
      check Alcotest.int "items" (Database.num_items db) (Database.num_items back);
      Database.iteri
        (fun tid txn -> check itemset "txn" txn (Database.get back tid))
        db)

let test_db_io_empty_transactions () =
  let db = Database.of_lists ~num_items:2 [ []; [ 0 ]; [] ] in
  let path = Filename.temp_file "olar" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Db_io.save db path;
      let back = Db_io.load path in
      check Alcotest.int "size" 3 (Database.size back);
      check itemset "empty kept" Itemset.empty (Database.get back 0))

let expect_malformed lines =
  match Db_io.parse lines with
  | exception Db_io.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed"

let test_db_io_malformed () =
  expect_malformed [];
  expect_malformed [ "garbage" ];
  expect_malformed [ "# olar transaction database v1" ];
  expect_malformed [ "# olar transaction database v1"; "items x"; "transactions 0" ];
  expect_malformed
    [ "# olar transaction database v1"; "items 2"; "transactions 2"; "0" ];
  expect_malformed
    [ "# olar transaction database v1"; "items 2"; "transactions 1"; "0 oops" ];
  (* item out of the declared universe *)
  expect_malformed
    [ "# olar transaction database v1"; "items 2"; "transactions 1"; "5" ]

let db_io_roundtrip_prop =
  QCheck2.Test.make ~name:"db_io: parse inverts print" ~count:50
    ~print:Helpers.db_print Helpers.db_gen (fun db ->
      let path = Filename.temp_file "olar" ".db" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Db_io.save db path;
          let back = Db_io.load path in
          Database.size back = Database.size db
          && Database.num_items back = Database.num_items db
          && List.for_all
               (fun tid -> Itemset.equal (Database.get db tid) (Database.get back tid))
               (List.init (Database.size db) Fun.id)))

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "data.item",
      [
        case "vocab intern" test_vocab_intern;
        case "vocab of_names" test_vocab_of_names;
        case "vocab save/load" test_vocab_save_load;
      ] );
    ( "data.itemset",
      [
        case "construction" test_itemset_construction;
        case "observation" test_itemset_observation;
        case "algebra" test_itemset_algebra;
        case "relations" test_itemset_relations;
        case "parents" test_itemset_parents;
        case "subsets" test_itemset_subsets;
        case "order/hash" test_itemset_order_hash;
        case "pp_named" test_itemset_pp_named;
        case "containers" test_itemset_containers;
      ]
      @ List.map QCheck_alcotest.to_alcotest itemset_props );
    ( "data.database",
      [
        case "basic" test_database_basic;
        case "validation" test_database_validation;
        case "support" test_database_support;
        case "aggregates" test_database_aggregates;
        case "count_of_fraction" test_database_count_of_fraction;
      ] );
    ( "data.tidlist",
      [
        case "matches scan" test_tidlist_matches_scan;
        case "tids" test_tidlist_tids;
        QCheck_alcotest.to_alcotest tidlist_prop;
      ] );
    ( "data.db_io",
      [
        case "roundtrip" test_db_io_roundtrip;
        case "empty transactions" test_db_io_empty_transactions;
        case "malformed" test_db_io_malformed;
        QCheck_alcotest.to_alcotest db_io_roundtrip_prop;
      ] );
  ]
