(* Tests for the olar.obs telemetry subsystem: histogram buckets and
   quantiles, span nesting and emission order, JSON-lines golden output,
   Prometheus exposition escaping, and the Jsonx printer/parser. *)

open Olar_obs
module H = Metrics.Histogram

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_bounds () =
  let b = H.log_bounds () in
  check Alcotest.int "default bound count" 46 (Array.length b);
  check (Alcotest.float 1e-18) "first bound" 1e-6 b.(0);
  check (Alcotest.float 1e-3) "last bound" 1e3 b.(45);
  Array.iteri
    (fun i x -> if i > 0 && x <= b.(i - 1) then Alcotest.fail "not increasing")
    b;
  (match H.of_bounds "bad" [| 1.0; 1.0 |] with
  | _ -> Alcotest.fail "non-increasing bounds accepted"
  | exception Invalid_argument _ -> ());
  match H.of_bounds "bad" [||] with
  | _ -> Alcotest.fail "empty bounds accepted"
  | exception Invalid_argument _ -> ()

let test_histogram_observe () =
  let h = H.of_bounds "h" [| 1.0; 2.0; 4.0 |] in
  check Alcotest.bool "empty mean is nan" true (Float.is_nan (H.mean h));
  check Alcotest.bool "empty quantile is nan" true
    (Float.is_nan (H.quantile h 0.5));
  List.iter (H.observe h) [ 0.5; 1.5; 3.0; 100.0 ];
  check (Alcotest.array Alcotest.int) "bucket counts" [| 1; 1; 1; 1 |]
    (H.counts h);
  check Alcotest.int "count" 4 (H.count h);
  check (Alcotest.float 1e-9) "sum" 105.0 (H.sum h);
  check (Alcotest.float 1e-9) "mean" 26.25 (H.mean h);
  (* quantile is the upper bound of the bucket where the cumulative
     count reaches ceil(q * total) *)
  check (Alcotest.float 1e-9) "p25" 1.0 (H.quantile h 0.25);
  check (Alcotest.float 1e-9) "p50" 2.0 (H.quantile h 0.5);
  check (Alcotest.float 1e-9) "p75" 4.0 (H.quantile h 0.75);
  check Alcotest.bool "p100 overflows to +Inf" true
    (H.quantile h 1.0 = Float.infinity);
  (* boundary samples land in the bucket whose bound they equal *)
  let g = H.of_bounds "g" [| 1.0; 2.0 |] in
  H.observe g 1.0;
  H.observe g 2.0;
  check (Alcotest.array Alcotest.int) "le semantics" [| 1; 1; 0 |] (H.counts g);
  match H.quantile h 1.5 with
  | _ -> Alcotest.fail "quantile out of range accepted"
  | exception Invalid_argument _ -> ()

let histogram_quantile_prop =
  QCheck2.Test.make ~name:"obs: histogram quantile covers q of the samples"
    ~count:300
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 50) (float_range 1e-7 2e3))
        (float_range 0.0 1.0))
    (fun (samples, q) ->
      let h = H.create "p" in
      List.iter (H.observe h) samples;
      let cut = H.quantile h q in
      let n = List.length samples in
      let need = max 1 (int_of_float (Float.ceil ((q *. float_of_int n) -. 1e-9))) in
      let covered = List.length (List.filter (fun s -> s <= cut) samples) in
      covered >= min need n
      (* and the estimate never decreases in q *)
      && H.quantile h (q /. 2.0) <= cut)

(* ------------------------------------------------------------------ *)
(* Registry *)

let test_registry_interning () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~help:"first" "c" in
  check Alcotest.bool "counter interned" true (c == Metrics.counter r "c");
  (match Metrics.gauge r "c" with
  | _ -> Alcotest.fail "kind mismatch accepted"
  | exception Invalid_argument _ -> ());
  let external_c = Metrics.Counter.create "olar_external_total" in
  Metrics.Counter.add external_c 7;
  Metrics.attach_counter r external_c;
  (match Metrics.find r "olar_external_total" with
  | Some { Metrics.metric = Metrics.M_counter c'; _ } ->
    check Alcotest.bool "attached counter is the same cell" true
      (c' == external_c)
  | _ -> Alcotest.fail "attached counter not found");
  let order = List.map (fun e -> e.Metrics.name) (Metrics.to_list r) in
  check (Alcotest.list Alcotest.string) "registration order"
    [ "c"; "olar_external_total" ] order

(* ------------------------------------------------------------------ *)
(* Trace spans *)

let test_span_nesting () =
  let sink, spans = Sink.memory () in
  let now = ref 0.0 in
  let t = Trace.create ~clock:(fun () -> !now) ~emit:(Sink.emit sink) () in
  Trace.with_span t "outer" (fun () ->
      now := 1.0;
      check Alcotest.int "depth inside outer" 1 (Trace.depth t);
      Trace.with_span t "inner"
        ~attrs:(fun () -> [ ("k", Trace.Int 7) ])
        (fun () -> now := 1.5);
      now := 1.75);
  check Alcotest.int "all closed" 0 (Trace.depth t);
  match spans () with
  | [ inner; outer ] ->
    (* children are emitted before parents; ids follow open order *)
    check Alcotest.string "inner first" "inner" inner.Trace.name;
    check Alcotest.string "outer second" "outer" outer.Trace.name;
    check Alcotest.int "outer id" 0 outer.Trace.id;
    check Alcotest.int "inner id" 1 inner.Trace.id;
    check (Alcotest.option Alcotest.int) "outer is a root" None
      outer.Trace.parent;
    check (Alcotest.option Alcotest.int) "inner parent" (Some 0)
      inner.Trace.parent;
    check Alcotest.int "inner depth" 1 inner.Trace.depth;
    check (Alcotest.float 1e-12) "inner start" 1.0 inner.Trace.start_s;
    check (Alcotest.float 1e-12) "inner duration" 0.5 inner.Trace.duration_s;
    check (Alcotest.float 1e-12) "outer duration" 1.75 outer.Trace.duration_s;
    (match inner.Trace.attrs with
    | [ ("k", Trace.Int 7) ] -> ()
    | _ -> Alcotest.fail "inner attrs")
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l)

let test_span_emitted_on_raise () =
  let sink, spans = Sink.memory () in
  let t = Trace.create ~clock:(fun () -> 0.0) ~emit:(Sink.emit sink) () in
  (try Trace.with_span t "boom" (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "span emitted despite raise" 1 (List.length (spans ()));
  check Alcotest.int "stack unwound" 0 (Trace.depth t)

let test_exit_closed_span () =
  let t = Trace.create ~clock:(fun () -> 0.0) ~emit:(fun _ -> ()) () in
  let id = Trace.enter t "only" in
  Trace.exit t ~id [];
  match Trace.exit t ~id [] with
  | () -> Alcotest.fail "exit of a closed span accepted"
  | exception Invalid_argument _ -> ()

(* Exiting an outer span while descendants are still open must not
   corrupt the tree: the orphans are closed child-first, tagged
   [abandoned], before the target emits. This is what keeps one raising
   query from skewing the parentage of every later span. *)
let test_exit_unwinds_abandoned () =
  let sink, spans = Sink.memory () in
  let t = Trace.create ~clock:(fun () -> 0.0) ~emit:(Sink.emit sink) () in
  let outer = Trace.enter t "outer" in
  let _inner = Trace.enter t "inner" in
  let _leaf = Trace.enter t "leaf" in
  Trace.exit t ~id:outer [ ("k", Trace.Int 1) ];
  check Alcotest.int "stack fully unwound" 0 (Trace.depth t);
  match spans () with
  | [ leaf; inner; outer' ] ->
    check Alcotest.string "leaf first" "leaf" leaf.Trace.name;
    check Alcotest.string "inner second" "inner" inner.Trace.name;
    check Alcotest.string "outer last" "outer" outer'.Trace.name;
    check Alcotest.bool "leaf tagged abandoned" true
      (List.mem_assoc "abandoned" leaf.Trace.attrs);
    check Alcotest.bool "inner tagged abandoned" true
      (List.mem_assoc "abandoned" inner.Trace.attrs);
    check Alcotest.bool "target keeps its own attrs" true
      (List.mem_assoc "k" outer'.Trace.attrs)
  | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l)

(* A raising attribute thunk must not leave the frame open. *)
let test_attrs_raise_closes_span () =
  let sink, spans = Sink.memory () in
  let t = Trace.create ~clock:(fun () -> 0.0) ~emit:(Sink.emit sink) () in
  let result =
    Trace.with_span t "q"
      ~attrs:(fun () -> failwith "attrs boom")
      (fun () -> 42)
  in
  check Alcotest.int "body result still returned" 42 result;
  check Alcotest.int "stack unwound" 0 (Trace.depth t);
  match spans () with
  | [ s ] ->
    check Alcotest.bool "error recorded in attrs" true
      (List.mem_assoc "attrs_error" s.Trace.attrs)
  | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* A raising body abandons the inner manual span; with_span's exit must
   still emit child-first and leave the tracer reusable. *)
let test_raise_with_open_child () =
  let sink, spans = Sink.memory () in
  let t = Trace.create ~clock:(fun () -> 0.0) ~emit:(Sink.emit sink) () in
  (try
     Trace.with_span t "outer" (fun () ->
         let _inner = Trace.enter t "inner" in
         failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "stack unwound" 0 (Trace.depth t);
  (match spans () with
  | [ inner; outer ] ->
    check Alcotest.string "inner first" "inner" inner.Trace.name;
    check Alcotest.bool "inner abandoned" true
      (List.mem_assoc "abandoned" inner.Trace.attrs);
    check Alcotest.string "outer second" "outer" outer.Trace.name
  | l -> Alcotest.failf "expected 2 spans, got %d" (List.length l));
  (* the tracer still works after the incident *)
  Trace.with_span t "next" (fun () -> ());
  check Alcotest.int "later spans unaffected" 3 (List.length (spans ()))

(* ------------------------------------------------------------------ *)
(* JSON-lines sink: golden output under a deterministic clock *)

let test_jsonl_golden () =
  let buf = Buffer.create 256 in
  let sink = Sink.jsonl_writer (Buffer.add_string buf) in
  let now = ref 0.0 in
  let t = Trace.create ~clock:(fun () -> !now) ~emit:(Sink.emit sink) () in
  Trace.with_span t "outer" (fun () ->
      now := 1.0;
      Trace.with_span t "inner"
        ~attrs:(fun () -> [ ("k", Trace.Int 7); ("s", Trace.Str "a\"b") ])
        (fun () -> now := 1.5);
      now := 1.75);
  let golden =
    "{\"id\":1,\"parent\":0,\"depth\":1,\"name\":\"inner\",\"start_s\":1,\
     \"duration_s\":0.5,\"attrs\":{\"k\":7,\"s\":\"a\\\"b\"}}\n\
     {\"id\":0,\"parent\":null,\"depth\":0,\"name\":\"outer\",\"start_s\":0,\
     \"duration_s\":1.75,\"attrs\":{}}\n"
  in
  check Alcotest.string "jsonl golden" golden (Buffer.contents buf);
  (* every line re-parses with the same Jsonx the checker uses *)
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match Jsonx.of_string line with
         | Ok _ -> ()
         | Error e -> Alcotest.failf "line does not re-parse: %s" e)

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

let test_prometheus_escaping () =
  check Alcotest.string "sanitize" "weird_name_9_"
    (Exposition.sanitize_name "weird-name 9!");
  check Alcotest.string "leading digit" "_xs" (Exposition.sanitize_name "9xs");
  check Alcotest.string "help escape" "a\\\\b\\nc"
    (Exposition.escape_help "a\\b\nc");
  check Alcotest.string "label escape" "a\\\"b\\nc\\\\"
    (Exposition.escape_label "a\"b\nc\\")

let test_prometheus_exposition () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~help:"hits\nand misses" "olar weird!total" in
  Metrics.Counter.add c 3;
  let g = Metrics.gauge r "olar_gauge" in
  Metrics.Gauge.set g 2.5;
  let h = Metrics.histogram r ~bounds:[| 0.5; 1.0 |] "olar_lat_seconds" in
  List.iter (Metrics.Histogram.observe h) [ 0.25; 0.75; 9.0 ];
  let text = Exposition.to_prometheus r in
  let expect =
    "# HELP olar_weird_total hits\\nand misses\n\
     # TYPE olar_weird_total counter\n\
     olar_weird_total 3\n\
     # TYPE olar_gauge gauge\n\
     olar_gauge 2.5\n\
     # TYPE olar_lat_seconds histogram\n\
     olar_lat_seconds_bucket{le=\"0.5\"} 1\n\
     olar_lat_seconds_bucket{le=\"1\"} 2\n\
     olar_lat_seconds_bucket{le=\"+Inf\"} 3\n\
     olar_lat_seconds_sum 10\n\
     olar_lat_seconds_count 3\n"
  in
  check Alcotest.string "prometheus exposition" expect text

(* ------------------------------------------------------------------ *)
(* Jsonx *)

let test_jsonx_printing () =
  let v =
    Jsonx.Obj
      [
        ("a", Jsonx.Arr [ Jsonx.Int 1; Jsonx.Float 2.5; Jsonx.Null ]);
        ("s", Jsonx.Str "tab\there \"q\" \\");
        ("b", Jsonx.Bool false);
        ("nan", Jsonx.Float Float.nan);
      ]
  in
  check Alcotest.string "compact printing"
    "{\"a\":[1,2.5,null],\"s\":\"tab\\there \\\"q\\\" \\\\\",\"b\":false,\
     \"nan\":null}"
    (Jsonx.to_string v)

let test_jsonx_parsing () =
  (match Jsonx.of_string " { \"k\" : [ 1 , -2.5e1 , \"\\u00e9\\ud83d\\ude00\" ] } " with
  | Ok (Jsonx.Obj [ ("k", Jsonx.Arr [ Jsonx.Int 1; Jsonx.Float f; Jsonx.Str s ]) ])
    when f = -25.0 ->
    check Alcotest.string "unicode escapes" "\xc3\xa9\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "parsed to an unexpected shape"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  List.iter
    (fun bad ->
      match Jsonx.of_string bad with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" bad
      | Error _ -> ())
    [ "{"; "[1,]"; "01"; "\"\\x\""; "{}}"; "nul"; "\"\n\"" ]

(* Structural round-trip, with numbers compared by value: the printer
   writes 1.0 as "1", which re-parses as Int 1. *)
let rec equiv a b =
  match (a, b) with
  | Jsonx.Int x, Jsonx.Float y | Jsonx.Float y, Jsonx.Int x ->
    float_of_int x = y
  | Jsonx.Arr xs, Jsonx.Arr ys ->
    List.length xs = List.length ys && List.for_all2 equiv xs ys
  | Jsonx.Obj xs, Jsonx.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> k1 = k2 && equiv v1 v2)
         xs ys
  | a, b -> a = b

let jsonx_gen =
  let open QCheck2.Gen in
  sized @@ fix (fun self n ->
      let leaf =
        oneof
          [
            return Jsonx.Null;
            map (fun b -> Jsonx.Bool b) bool;
            map (fun i -> Jsonx.Int i) int;
            map (fun f -> Jsonx.Float f) (float_range (-1e9) 1e9);
            map (fun s -> Jsonx.Str s) string_printable;
          ]
      in
      if n <= 0 then leaf
      else
        oneof
          [
            leaf;
            map (fun xs -> Jsonx.Arr xs)
              (list_size (int_range 0 4) (self (n / 2)));
            map
              (fun kvs -> Jsonx.Obj kvs)
              (list_size (int_range 0 4)
                 (pair string_printable (self (n / 2))));
          ])

let jsonx_roundtrip_prop =
  QCheck2.Test.make ~name:"obs: jsonx print/parse round-trip" ~count:300
    ~print:(fun v -> Jsonx.to_string v)
    jsonx_gen
    (fun v ->
      match Jsonx.of_string (Jsonx.to_string v) with
      | Ok v' -> equiv v v'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Obs façade *)

let test_query_span_records () =
  let sink, spans = Sink.memory () in
  let now = ref 0.0 in
  match Obs.create ~clock:(fun () -> !now) ~trace:sink () with
  | None -> Alcotest.fail "create returned disabled"
  | Some ctx ->
    let r = Obs.metrics ctx in
    let result =
      Obs.query_span ctx ~name:"itemsets" ~work:Obs.Vertices (fun work ->
          Olar_util.Timer.Counter.bump work;
          Olar_util.Timer.Counter.bump work;
          now := 0.25;
          "answer")
    in
    check Alcotest.string "result passes through" "answer" result;
    (match Metrics.find r "olar_queries_total" with
    | Some { Metrics.metric = Metrics.M_counter c; _ } ->
      check Alcotest.int "queries counted" 1 (Metrics.Counter.value c)
    | _ -> Alcotest.fail "olar_queries_total missing");
    (match Metrics.find r "olar_query_vertices_visited_total" with
    | Some { Metrics.metric = Metrics.M_counter c; _ } ->
      check Alcotest.int "work flows to the registry" 2
        (Metrics.Counter.value c)
    | _ -> Alcotest.fail "vertices counter missing");
    (match Metrics.find r "olar_query_itemsets_seconds" with
    | Some { Metrics.metric = Metrics.M_histogram h; _ } ->
      check Alcotest.int "latency sampled" 1 (Metrics.Histogram.count h);
      check (Alcotest.float 1e-12) "latency value" 0.25
        (Metrics.Histogram.sum h)
    | _ -> Alcotest.fail "latency histogram missing");
    (* spans buffer in the sharded tracer until the coordinator flushes *)
    check Alcotest.int "buffered until flush" 0 (List.length (spans ()));
    Obs.flush ctx;
    match spans () with
    | [ s ] ->
      check Alcotest.string "span name" "query.itemsets" s.Trace.name;
      check Alcotest.bool "span carries the work delta" true
        (List.mem_assoc "work" s.Trace.attrs);
      check Alcotest.bool "span is domain-tagged" true
        (List.mem_assoc "domain" s.Trace.attrs)
    | l -> Alcotest.failf "expected 1 span, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Labelled gauges and runtime/build-info gauges *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_labelled_gauge_exposition () =
  let r = Metrics.create () in
  let g =
    Metrics.gauge r ~help:"Constant 1"
      ~labels:[ ("version", "1.2.3"); ("weird key", "a\"b") ]
      "olar_build_info"
  in
  Metrics.Gauge.set g 1.0;
  (* same name+labels intern to the same cell; labels stick from the
     first registration *)
  check Alcotest.bool "interned" true (g == Metrics.gauge r "olar_build_info");
  let text = Exposition.to_text r in
  check Alcotest.bool "text carries labels" true
    (contains text "olar_build_info{version=\"1.2.3\"");
  let prom = Exposition.to_prometheus r in
  let expect =
    "# HELP olar_build_info Constant 1\n\
     # TYPE olar_build_info gauge\n\
     olar_build_info{version=\"1.2.3\",weird_key=\"a\\\"b\"} 1\n"
  in
  check Alcotest.string "prometheus series with labels" expect prom;
  match Exposition.to_json r with
  | Jsonx.Obj [ ("olar_build_info", v) ] ->
    check
      (Alcotest.option Alcotest.string)
      "label in json" (Some "1.2.3")
      Jsonx.(Option.bind (path [ "labels"; "version" ] v) to_str);
    check
      (Alcotest.option (Alcotest.float 1e-12))
      "value in json" (Some 1.0)
      Jsonx.(Option.bind (member "value" v) number)
  | _ -> Alcotest.fail "unexpected json shape"

let test_runtime_and_build_gauges () =
  let now = ref 10.0 in
  match Obs.create ~clock:(fun () -> !now) () with
  | None -> Alcotest.fail "create returned disabled"
  | Some ctx ->
    now := 12.5;
    Obs.update_runtime_gauges ctx;
    Obs.set_build_info ctx ~version:"9.9.9";
    let r = Obs.metrics ctx in
    let gauge_value name =
      match Metrics.find r name with
      | Some { Metrics.metric = Metrics.M_gauge g; _ } -> Metrics.Gauge.value g
      | _ -> Alcotest.failf "gauge %s missing" name
    in
    check (Alcotest.float 1e-9) "uptime from the ctx clock" 2.5
      (gauge_value "olar_uptime_seconds");
    check Alcotest.bool "minor collections non-negative" true
      (gauge_value "olar_gc_minor_collections_total" >= 0.0);
    check Alcotest.bool "major collections non-negative" true
      (gauge_value "olar_gc_major_collections_total" >= 0.0);
    check Alcotest.bool "heap words non-negative" true
      (gauge_value "olar_heap_words" >= 0.0);
    check (Alcotest.float 1e-12) "build info is constant 1" 1.0
      (gauge_value "olar_build_info");
    (match Metrics.find r "olar_build_info" with
    | Some { Metrics.labels = [ ("version", "9.9.9") ]; _ } -> ()
    | _ -> Alcotest.fail "build info labels wrong");
    (* idempotent: a second update resamples the same cells *)
    now := 20.0;
    Obs.update_runtime_gauges ctx;
    check (Alcotest.float 1e-9) "uptime resampled" 10.0
      (gauge_value "olar_uptime_seconds");
    (* all three formats render the labelled gauge without raising *)
    ignore (Exposition.to_text r);
    ignore (Exposition.to_prometheus r);
    ignore (Exposition.to_json r)

(* ------------------------------------------------------------------ *)
(* Gauge max and labelled histograms *)

let test_gauge_max () =
  let r = Metrics.create () in
  let g = Metrics.gauge r ~help:"peak" "peak" in
  Metrics.Gauge.max_int g 3;
  check (Alcotest.float 1e-12) "first max sets" 3.0 (Metrics.Gauge.value g);
  Metrics.Gauge.max_int g 1;
  check (Alcotest.float 1e-12) "lower max ignored" 3.0 (Metrics.Gauge.value g);
  Metrics.Gauge.max_float g 7.5;
  check (Alcotest.float 1e-12) "higher max wins" 7.5 (Metrics.Gauge.value g);
  (* racing maxima from several domains still converge on the largest *)
  let workers =
    Array.init 4 (fun w ->
        Domain.spawn (fun () ->
            for i = 1 to 1000 do
              Metrics.Gauge.max_int g ((w * 1000) + i)
            done))
  in
  Array.iter Domain.join workers;
  check (Alcotest.float 1e-12) "concurrent max converges" 4000.0
    (Metrics.Gauge.value g)

let test_labelled_histogram_exposition () =
  let r = Metrics.create () in
  let mk phase =
    Metrics.histogram r ~help:"per-phase latency"
      ~labels:[ ("phase", phase) ]
      "olar_http_phase_seconds"
  in
  let hp = mk "parse" and hq = mk "queue" in
  check Alcotest.bool "series intern by (name, labels)" true (hp != hq);
  check Alcotest.bool "same labels re-intern" true (hp == mk "parse");
  Metrics.Histogram.observe hp 0.5;
  Metrics.Histogram.observe hq 1.5;
  let prom = Exposition.to_prometheus r in
  check Alcotest.bool "parse bucket labelled" true
    (contains prom "olar_http_phase_seconds_bucket{phase=\"parse\",le=");
  check Alcotest.bool "queue bucket labelled" true
    (contains prom "olar_http_phase_seconds_bucket{phase=\"queue\",le=");
  check Alcotest.bool "sum keeps constant labels" true
    (contains prom "olar_http_phase_seconds_sum{phase=\"parse\"} 0.5");
  check Alcotest.bool "count keeps constant labels" true
    (contains prom "olar_http_phase_seconds_count{phase=\"queue\"} 1");
  (* HELP/TYPE are announced once per base name, not once per series *)
  let occurrences needle =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length prom then acc
      else if String.sub prom i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check Alcotest.int "one HELP line" 1
    (occurrences "# HELP olar_http_phase_seconds ");
  check Alcotest.int "one TYPE line" 1
    (occurrences "# TYPE olar_http_phase_seconds ")

(* ------------------------------------------------------------------ *)
(* Sharded tracer *)

let test_sharded_tracer () =
  let sink, spans = Sink.memory () in
  let sh = Trace.Sharded.create ~emit:(Sink.emit sink) () in
  let worker tag () =
    let t = Trace.Sharded.tracer sh in
    Trace.with_span t (tag ^ ".outer") (fun () ->
        Trace.with_span t (tag ^ ".inner") (fun () -> ()))
  in
  let domains =
    Array.init 3 (fun i -> Domain.spawn (worker (Printf.sprintf "d%d" i)))
  in
  Array.iter Domain.join domains;
  worker "main" ();
  check Alcotest.bool "nothing emitted before flush" true (spans () = []);
  check Alcotest.bool "four shards interned" true (Trace.Sharded.shards sh >= 4);
  Trace.Sharded.flush sh;
  let emitted = spans () in
  check Alcotest.int "all spans merged" 8 (List.length emitted);
  let domain_of s =
    match List.assoc_opt "domain" s.Trace.attrs with
    | Some (Trace.Int d) -> d
    | _ -> Alcotest.failf "span %s lacks a domain tag" s.Trace.name
  in
  let ids = List.map (fun s -> s.Trace.id) emitted in
  check Alcotest.int "ids unique across domains"
    (List.length ids)
    (List.length (List.sort_uniq compare ids));
  (* per domain: exactly one outer and one inner, child emitted first,
     parentage intact after the merge *)
  let by_domain = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let d = domain_of s in
      Hashtbl.replace by_domain d (s :: (try Hashtbl.find by_domain d with Not_found -> [])))
    emitted;
  check Alcotest.int "four domains tagged" 4 (Hashtbl.length by_domain);
  Hashtbl.iter
    (fun d group ->
      match List.rev group with
      | [ inner; outer ] ->
        check Alcotest.bool
          (Printf.sprintf "domain %d child-first" d)
          true
          (String.length inner.Trace.name >= 6
          && String.sub inner.Trace.name
               (String.length inner.Trace.name - 6)
               6
             = ".inner");
        check
          (Alcotest.option Alcotest.int)
          (Printf.sprintf "domain %d parentage" d)
          (Some outer.Trace.id) inner.Trace.parent;
        check
          (Alcotest.option Alcotest.int)
          (Printf.sprintf "domain %d root" d)
          None outer.Trace.parent
      | l ->
        Alcotest.failf "domain %d emitted %d spans, expected 2" d
          (List.length l))
    by_domain;
  (* injected spans: reserve the root id first, emit children before it *)
  let root = Trace.Sharded.alloc_id sh in
  let child =
    Trace.Sharded.inject sh ~parent:root ~depth:1 ~name:"phase.queue"
      ~start_s:0.0 ~duration_s:0.1 []
  in
  let root' =
    Trace.Sharded.inject sh ~id:root ~depth:0 ~name:"http.request"
      ~start_s:0.0 ~duration_s:0.2
      [ ("request", Trace.Int 42) ]
  in
  check Alcotest.int "reserved id honoured" root root';
  Trace.Sharded.flush sh;
  match spans () with
  | _ :: _ as all ->
    let tail = List.filteri (fun i _ -> i >= 8) all in
    (match tail with
    | [ c; r ] ->
      check Alcotest.string "child injected first" "phase.queue" c.Trace.name;
      check Alcotest.string "root injected last" "http.request" r.Trace.name;
      check (Alcotest.option Alcotest.int) "injected parentage" (Some root)
        c.Trace.parent;
      check Alcotest.int "child id distinct" child c.Trace.id;
      check Alcotest.bool "injected spans domain-tagged" true
        (List.mem_assoc "domain" c.Trace.attrs
        && List.mem_assoc "domain" r.Trace.attrs)
    | l -> Alcotest.failf "expected 2 injected spans, got %d" (List.length l))
  | [] -> Alcotest.fail "second flush emitted nothing"

(* ------------------------------------------------------------------ *)
(* Sliding windows *)

let test_collect_hook_samples_at_exposition () =
  let now = ref 100.0 in
  match Obs.create ~clock:(fun () -> !now) () with
  | None -> Alcotest.fail "create returned disabled"
  | Some ctx ->
    let r = Obs.metrics ctx in
    let uptime () =
      match Metrics.find r "olar_uptime_seconds" with
      | Some { Metrics.metric = Metrics.M_gauge g; _ } -> Metrics.Gauge.value g
      | _ -> Alcotest.fail "uptime gauge missing"
    in
    (* no explicit [update_runtime_gauges]: rendering runs the
       registry's collect hooks, so the scrape itself samples the
       runtime gauges at exposition time *)
    now := 107.0;
    ignore (Exposition.to_prometheus r);
    check (Alcotest.float 1e-9) "prometheus scrape sampled uptime" 7.0
      (uptime ());
    now := 111.5;
    ignore (Exposition.to_json r);
    check (Alcotest.float 1e-9) "json render resampled uptime" 11.5 (uptime ())

let test_window_basics () =
  let now = ref 0.0 in
  let w = Window.create ~clock:(fun () -> !now) ~buckets:3 ~width_s:1.0 () in
  check (Alcotest.float 1e-12) "span" 3.0 (Window.span_s w);
  let c = Window.Counter.create "reqs" in
  let cv = Window.track_counter w c in
  let h = H.of_bounds "lat" [| 0.01; 0.1; 1.0 |] in
  let hv = Window.track_histogram w h in
  Window.Counter.add c 5;
  List.iter (H.observe h) [ 0.005; 0.005; 0.05; 0.5 ];
  check Alcotest.int "delta before any tick" 5 (Window.counter_delta cv);
  check (Alcotest.float 1e-12) "rate over zero elapsed time" 0.0
    (Window.counter_rate cv);
  let hw = Window.histogram_window hv in
  check Alcotest.int "windowed sample count" 4 hw.Window.count;
  check (Alcotest.float 1e-9) "windowed sum" 0.56 hw.Window.sum;
  check (Alcotest.float 1e-12) "windowed p50 is a bucket upper bound" 0.01
    hw.Window.p50;
  check (Alcotest.float 1e-12) "windowed p99" 1.0 hw.Window.p99;
  now := 1.0;
  Window.tick w;
  check (Alcotest.float 1e-12) "rate over one second" 5.0
    (Window.counter_rate cv);
  (* rotate the ring past the span: boundaries at t=2,3,4 remain, the
     start boundary (t=2) postdates all the activity above *)
  now := 2.0;
  Window.tick w;
  now := 3.0;
  Window.tick w;
  now := 4.0;
  Window.tick w;
  check Alcotest.int "counter activity aged out" 0 (Window.counter_delta cv);
  check Alcotest.int "histogram activity aged out" 0
    (Window.histogram_window hv).Window.count;
  Window.Counter.add c 2;
  check Alcotest.int "fresh activity visible" 2 (Window.counter_delta cv);
  (* attaching back-fills every boundary with the current value, so a
     pre-existing count never reads as a windowed burst *)
  let late = Window.Counter.create "late" in
  Window.Counter.add late 100;
  let lv = Window.track_counter w late in
  check Alcotest.int "attach back-fills history" 0 (Window.counter_delta lv);
  Window.Counter.incr late;
  check Alcotest.int "post-attach increments count" 1 (Window.counter_delta lv);
  Window.Counter.reset late;
  check Alcotest.int "external reset clamps at zero" 0 (Window.counter_delta lv)

let test_window_clock_jump () =
  let now = ref 0.0 in
  let w = Window.create ~clock:(fun () -> !now) ~buckets:4 ~width_s:1.0 () in
  let c = Window.Counter.create "jump" in
  let cv = Window.track_counter w c in
  Window.Counter.add c 7;
  now := 1.0;
  Window.tick w;
  Window.Counter.add c 3;
  (* the ticker stalls while the clock runs far past the span: every
     boundary is stale, so readings fall back to the newest one *)
  now := 500.0;
  check Alcotest.int "stale ring falls back to the newest boundary" 3
    (Window.counter_delta cv);
  check (Alcotest.float 1e-9) "covered since the newest boundary" 499.0
    (Window.covered_s w);
  (* the next tick starts a short fresh window instead of a stale long
     one *)
  Window.tick w;
  check Alcotest.int "fresh window after the jump" 0 (Window.counter_delta cv);
  check (Alcotest.float 1e-12) "fresh window covers nothing yet" 0.0
    (Window.covered_s w);
  Window.Counter.incr c;
  now := 500.5;
  check Alcotest.int "new activity visible after the jump" 1
    (Window.counter_delta cv);
  check (Alcotest.float 1e-9) "rate over the fresh half second" 2.0
    (Window.counter_rate cv)

let test_window_validation () =
  let clock () = 0.0 in
  (match Window.create ~clock ~buckets:0 () with
  | _ -> Alcotest.fail "buckets=0 accepted"
  | exception Invalid_argument _ -> ());
  (match Window.create ~clock ~width_s:0.0 () with
  | _ -> Alcotest.fail "width_s=0 accepted"
  | exception Invalid_argument _ -> ());
  let w = Window.create ~clock () in
  let hv = Window.track_histogram w (H.create "q") in
  (match Window.histogram_quantile hv 1.5 with
  | _ -> Alcotest.fail "quantile out of range accepted"
  | exception Invalid_argument _ -> ());
  check Alcotest.bool "empty windowed quantile is nan" true
    (Float.is_nan (Window.histogram_quantile hv 0.5))

(* Differential: drive a ring-of-buckets window and a brute-force list
   model through the same op sequence (bumps, observations, clock
   advances including jumps past the span, ticks) and demand identical
   readings after every op. The model restates the spec directly —
   retained boundaries newest-last, start = oldest retained inside the
   span else the newest — so any ring-index slip in the implementation
   shows up as a divergence. *)
let window_differential_prop =
  QCheck2.Test.make ~name:"obs: window matches a brute-force model" ~count:150
    QCheck2.Gen.(
      let op =
        frequency
          [
            (3, map (fun n -> `Add n) (int_range 1 40));
            (3, map (fun x -> `Obs x) (float_range 1e-6 50.0));
            (4, map (fun dt -> `Advance dt) (float_range 0.0 2.5));
            (1, return (`Advance 400.0));
            (3, return `Tick);
          ]
      in
      list_size (int_range 1 120) op)
    (fun ops ->
      let now = ref 1000.0 in
      let buckets = 5 and width_s = 1.0 in
      let w = Window.create ~clock:(fun () -> !now) ~buckets ~width_s () in
      let c = Window.Counter.create "m" in
      let h = H.create "mh" in
      let cv = Window.track_counter w c in
      let hv = Window.track_histogram w h in
      let bounds = H.bounds h in
      let span = float_of_int buckets *. width_s in
      (* model boundaries, oldest first, at most [buckets] retained *)
      let snap () = (!now, Window.Counter.value c, H.counts h, H.sum h) in
      let bnds = ref [ snap () ] in
      let newest_time () =
        match List.rev !bnds with
        | (t, _, _, _) :: _ -> t
        | [] -> assert false
      in
      let start_boundary () =
        let horizon = !now -. span in
        let rec go = function
          | [ last ] -> last
          | ((t, _, _, _) as b) :: rest -> if t >= horizon then b else go rest
          | [] -> assert false
        in
        go !bnds
      in
      let feq a b = (Float.is_nan a && Float.is_nan b) || a = b in
      let agrees () =
        let bt, bc, bcounts, bsum = start_boundary () in
        let exp_delta = max 0 (Window.Counter.value c - bc) in
        let dt = !now -. bt in
        let exp_rate = if dt > 0.0 then float_of_int exp_delta /. dt else 0.0 in
        let exp_counts =
          Array.mapi (fun i x -> max 0 (x - bcounts.(i))) (H.counts h)
        in
        let exp_count = Array.fold_left ( + ) 0 exp_counts in
        let exp_sum =
          if exp_count = 0 then 0.0 else Float.max 0.0 (H.sum h -. bsum)
        in
        let exp_hrate =
          if dt > 0.0 then float_of_int exp_count /. dt else 0.0
        in
        let q p = H.quantile_of ~bounds ~counts:exp_counts p in
        let hw = Window.histogram_window hv in
        Window.counter_delta cv = exp_delta
        && feq (Window.counter_rate cv) exp_rate
        && hw.Window.count = exp_count
        && feq hw.Window.sum exp_sum
        && feq hw.Window.rate exp_hrate
        && feq hw.Window.p50 (q 0.5)
        && feq hw.Window.p90 (q 0.9)
        && feq hw.Window.p99 (q 0.99)
        && feq (Window.covered_s w) (Float.max 0.0 dt)
      in
      List.for_all
        (fun op ->
          (match op with
          | `Add n -> Window.Counter.add c n
          | `Obs x -> H.observe h x
          | `Advance dt -> now := !now +. dt
          | `Tick ->
            if !now -. newest_time () >= width_s then begin
              bnds := !bnds @ [ snap () ];
              let extra = List.length !bnds - buckets in
              if extra > 0 then
                bnds := List.filteri (fun i _ -> i >= extra) !bnds
            end;
            Window.tick w);
          agrees ())
        ops)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "obs.metrics",
      [
        case "log bounds" test_histogram_bounds;
        case "observe/quantile" test_histogram_observe;
        case "registry interning" test_registry_interning;
        QCheck_alcotest.to_alcotest histogram_quantile_prop;
      ] );
    ( "obs.trace",
      [
        case "nesting and order" test_span_nesting;
        case "emitted on raise" test_span_emitted_on_raise;
        case "exit closed span" test_exit_closed_span;
        case "exit unwinds abandoned" test_exit_unwinds_abandoned;
        case "raising attrs closes span" test_attrs_raise_closes_span;
        case "raise with open child" test_raise_with_open_child;
        case "jsonl golden" test_jsonl_golden;
        case "sharded merge" test_sharded_tracer;
      ] );
    ( "obs.exposition",
      [
        case "escaping" test_prometheus_escaping;
        case "prometheus text" test_prometheus_exposition;
        case "labelled gauge" test_labelled_gauge_exposition;
        case "gauge max" test_gauge_max;
        case "labelled histogram" test_labelled_histogram_exposition;
        case "runtime and build gauges" test_runtime_and_build_gauges;
        case "collect hooks sample at exposition"
          test_collect_hook_samples_at_exposition;
      ] );
    ( "obs.window",
      [
        case "tracking, rotation and aging" test_window_basics;
        case "clock-jump fallback" test_window_clock_jump;
        case "argument validation" test_window_validation;
        QCheck_alcotest.to_alcotest window_differential_prop;
      ] );
    ( "obs.jsonx",
      [
        case "printing" test_jsonx_printing;
        case "parsing" test_jsonx_parsing;
        QCheck_alcotest.to_alcotest jsonx_roundtrip_prop;
      ] );
    ("obs.facade", [ case "query_span" test_query_span_records ]);
  ]
