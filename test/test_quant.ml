(* Tests for olar.quant: quantitative association rules (the paper's
   reference [22]) — schema validation, equi-depth fitting, encoding,
   labels and the end-to-end pipeline. *)

open Olar_data
open Olar_quant

let check = Alcotest.check

let schema () =
  [|
    Attribute.numeric "age" ~buckets:3;
    Attribute.categorical "married";
    Attribute.numeric "cars" ~buckets:2;
  |]

let records () =
  (* the cited paper's toy people table *)
  [|
    [| Attribute.Num 23.0; Attribute.Cat "no"; Attribute.Num 1.0 |];
    [| Attribute.Num 25.0; Attribute.Cat "yes"; Attribute.Num 1.0 |];
    [| Attribute.Num 29.0; Attribute.Cat "no"; Attribute.Num 0.0 |];
    [| Attribute.Num 34.0; Attribute.Cat "yes"; Attribute.Num 2.0 |];
    [| Attribute.Num 38.0; Attribute.Cat "yes"; Attribute.Num 2.0 |];
  |]

let test_attribute_validation () =
  Alcotest.check_raises "empty name" (Invalid_argument "Attribute.categorical: empty name")
    (fun () -> ignore (Attribute.categorical ""));
  Alcotest.check_raises "zero buckets" (Invalid_argument "Attribute.numeric: buckets")
    (fun () -> ignore (Attribute.numeric "x" ~buckets:0));
  Alcotest.check_raises "duplicate names"
    (Invalid_argument "Attribute.validate_schema: duplicate name") (fun () ->
      Attribute.validate_schema
        [| Attribute.categorical "a"; Attribute.categorical "a" |]);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Attribute.check_value: kind mismatch") (fun () ->
      Attribute.check_value (Attribute.categorical "a") (Attribute.Num 1.0));
  Alcotest.check_raises "NaN" (Invalid_argument "Attribute.check_value: NaN")
    (fun () ->
      Attribute.check_value (Attribute.numeric "a" ~buckets:2) (Attribute.Num Float.nan))

let test_fit_shape () =
  let enc = Quant.fit (schema ()) (records ()) in
  (* age: 3 buckets, married: 2 values, cars: 2 buckets *)
  check Alcotest.int "universe" 7 (Quant.num_items enc);
  check Alcotest.int "schema kept" 3 (Array.length (Quant.schema enc))

let test_fit_validation () =
  Alcotest.check_raises "no records" (Invalid_argument "Quant.fit: no records")
    (fun () -> ignore (Quant.fit (schema ()) [||]));
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Quant: record arity does not match schema") (fun () ->
      ignore (Quant.fit (schema ()) [| [| Attribute.Num 1.0 |] |]))

let test_encode_one_item_per_attribute () =
  let enc = Quant.fit (schema ()) (records ()) in
  Array.iter
    (fun record ->
      let txn = Quant.encode enc record in
      check Alcotest.int "one item per attribute" 3 (Itemset.cardinal txn))
    (records ())

let test_encode_buckets () =
  let enc = Quant.fit (schema ()) (records ()) in
  (* two records in the same age tercile share the age item *)
  let item_of record =
    Itemset.min_item (Quant.encode enc record)
    (* age is attribute 0: lowest ids *)
  in
  (* equi-depth on [23;25;29;34;38] with 3 buckets cuts at 25 and 34:
     {23} | {25,29} | {34,38} *)
  check Alcotest.int "25 and 29 share a tercile"
    (item_of (records ()).(1))
    (item_of (records ()).(2));
  check Alcotest.int "34 and 38 share a tercile"
    (item_of (records ()).(3))
    (item_of (records ()).(4));
  check Alcotest.bool "23 and 38 differ" true
    (item_of (records ()).(0) <> item_of (records ()).(4));
  (* unseen categorical value: attribute contributes no item *)
  let txn =
    Quant.encode enc
      [| Attribute.Num 30.0; Attribute.Cat "divorced"; Attribute.Num 1.0 |]
  in
  check Alcotest.int "unseen category skipped" 2 (Itemset.cardinal txn);
  (* numeric out of fitted range clamps into an extreme bucket *)
  let lowest =
    Quant.encode enc [| Attribute.Num (-10.0); Attribute.Cat "no"; Attribute.Num 0.0 |]
  in
  let first =
    Quant.encode enc [| Attribute.Num 23.0; Attribute.Cat "no"; Attribute.Num 0.0 |]
  in
  check Helpers.itemset "clamped low" first lowest

let test_labels () =
  let enc = Quant.fit (schema ()) (records ()) in
  (* the married block starts after age's 3 buckets; "no" was observed
     first, so it takes the first local id *)
  check Alcotest.string "categorical label" "married = no" (Quant.item_label enc 3);
  check Alcotest.string "second value" "married = yes" (Quant.item_label enc 4);
  check Alcotest.bool "numeric label mentions attribute" true
    (Helpers.contains_substring (Quant.item_label enc 0) "age in [");
  Alcotest.check_raises "unknown id" (Invalid_argument "Quant.item_label")
    (fun () -> ignore (Quant.item_label enc 99));
  let vocab = Quant.vocab enc in
  check Alcotest.int "vocab covers universe" (Quant.num_items enc)
    (Item.Vocab.size vocab)

let test_equidepth_balance () =
  (* 90 records uniform over [0, 90): 3 buckets of ~30 *)
  let schema = [| Attribute.numeric "v" ~buckets:3 |] in
  let records = Array.init 90 (fun i -> [| Attribute.Num (float_of_int i) |]) in
  let enc = Quant.fit schema records in
  let db = Quant.database enc records in
  let freq = Database.item_frequencies db in
  check Alcotest.int "three buckets" 3 (Array.length freq);
  Array.iter
    (fun c ->
      if c < 25 || c > 35 then Alcotest.failf "unbalanced bucket: %d" c)
    freq

let test_constant_numeric () =
  (* a constant attribute collapses to one bucket even with buckets=4 *)
  let schema = [| Attribute.numeric "k" ~buckets:4 |] in
  let records = Array.init 10 (fun _ -> [| Attribute.Num 7.0 |]) in
  let enc = Quant.fit schema records in
  check Alcotest.int "one item" 1 (Quant.num_items enc);
  check Alcotest.string "closed interval label" "k in [7, 7]"
    (Quant.item_label enc 0)

let test_pipeline_rules () =
  (* plant: older people own more cars *)
  let schema =
    [| Attribute.numeric "age" ~buckets:2; Attribute.numeric "cars" ~buckets:2 |]
  in
  let records =
    Array.init 200 (fun i ->
        let age = if i < 100 then 25.0 +. float_of_int (i mod 10) else 55.0 +. float_of_int (i mod 10) in
        let cars = if i < 100 then 1.0 else 2.0 in
        [| Attribute.Num age; Attribute.Num cars |])
  in
  let enc = Quant.fit schema records in
  let db = Quant.database enc records in
  let engine = Olar_core.Engine.at_threshold db ~primary_support:0.1 in
  let rules = Olar_core.Engine.essential_rules engine ~minsup:0.4 ~minconf:0.9 in
  check Alcotest.bool "age-cars rule found" true (rules <> []);
  let rendered =
    String.concat "\n"
      (List.map (fun r -> Format.asprintf "%a" (Quant.pp_rule enc) r) rules)
  in
  check Alcotest.bool "renders as predicates" true
    (Helpers.contains_substring rendered "age in ["
    && Helpers.contains_substring rendered "cars in [")

let quant_roundtrip_prop =
  QCheck2.Test.make ~name:"quant: every encoded record has <= one item per attribute"
    ~count:100
    QCheck2.Gen.(
      pair (int_range 1 5)
        (list_size (int_range 1 30) (pair (float_range 0.0 100.0) (string_size (int_range 0 4)))))
    (fun (buckets, rows) ->
      let schema =
        [| Attribute.numeric "x" ~buckets; Attribute.categorical "c" |]
      in
      let records =
        Array.of_list
          (List.map (fun (x, s) -> [| Attribute.Num x; Attribute.Cat s |]) rows)
      in
      let enc = Quant.fit schema records in
      Array.for_all
        (fun r ->
          let txn = Quant.encode enc r in
          Itemset.cardinal txn = 2
          && Itemset.fold
               (fun i ok -> ok && i >= 0 && i < Quant.num_items enc)
               txn true)
        records)

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "quant",
      [
        case "attribute validation" test_attribute_validation;
        case "fit shape" test_fit_shape;
        case "fit validation" test_fit_validation;
        case "one item per attribute" test_encode_one_item_per_attribute;
        case "bucket assignment" test_encode_buckets;
        case "labels" test_labels;
        case "equi-depth balance" test_equidepth_balance;
        case "constant numeric" test_constant_numeric;
        case "pipeline rules" test_pipeline_rules;
        QCheck_alcotest.to_alcotest quant_roundtrip_prop;
      ] );
  ]
