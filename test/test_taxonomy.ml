(* Tests for olar.taxonomy: is-a hierarchies and generalized rules
   (Srikant & Agrawal, the paper's reference [21]). *)

open Olar_data
open Olar_taxonomy

let check = Alcotest.check
let set = Itemset.of_list
let itemset = Helpers.itemset
let intl = Alcotest.(list int)

(* The cited paper's example hierarchy:
   0 jacket   -> 4 outerwear -> 6 clothes
   1 ski pants-> 4 outerwear
   2 shirt    -> 6 clothes
   3 shoes    -> 5 footwear
   7 hiking boots -> 5 footwear *)
let clothes_taxonomy () =
  Taxonomy.of_parents ~num_items:8
    [ (0, 4); (1, 4); (2, 6); (4, 6); (3, 5); (7, 5) ]

let test_structure () =
  let t = clothes_taxonomy () in
  check Alcotest.int "universe" 8 (Taxonomy.num_items t);
  check (Alcotest.option Alcotest.int) "jacket's parent" (Some 4) (Taxonomy.parent t 0);
  check (Alcotest.option Alcotest.int) "clothes is a root" None (Taxonomy.parent t 6);
  check intl "outerwear's children" [ 0; 1 ] (Taxonomy.children t 4);
  check intl "jacket's ancestors" [ 4; 6 ] (Taxonomy.ancestors t 0);
  check intl "clothes' descendants" [ 0; 1; 2; 4 ] (Taxonomy.descendants t 6);
  check intl "roots" [ 5; 6 ] (Taxonomy.roots t);
  check intl "leaves" [ 0; 1; 2; 3; 7 ] (Taxonomy.leaves t);
  check Alcotest.bool "clothes above jacket" true
    (Taxonomy.is_ancestor t ~ancestor:6 ~of_:0);
  check Alcotest.bool "footwear not above jacket" false
    (Taxonomy.is_ancestor t ~ancestor:5 ~of_:0);
  check Alcotest.int "depth of jacket" 2 (Taxonomy.depth t 0);
  check Alcotest.int "depth of root" 0 (Taxonomy.depth t 6)

let test_validation () =
  Alcotest.check_raises "two parents"
    (Invalid_argument "Taxonomy.of_parents: child with two parents") (fun () ->
      ignore (Taxonomy.of_parents ~num_items:3 [ (0, 1); (0, 2) ]));
  Alcotest.check_raises "self edge"
    (Invalid_argument "Taxonomy.of_parents: self edge") (fun () ->
      ignore (Taxonomy.of_parents ~num_items:2 [ (0, 0) ]));
  Alcotest.check_raises "cycle" (Invalid_argument "Taxonomy.of_parents: cycle")
    (fun () -> ignore (Taxonomy.of_parents ~num_items:3 [ (0, 1); (1, 2); (2, 0) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Taxonomy.of_parents: item out of range") (fun () ->
      ignore (Taxonomy.of_parents ~num_items:2 [ (0, 5) ]))

let test_extend_database () =
  let t = clothes_taxonomy () in
  let db = Database.of_lists ~num_items:8 [ [ 0; 3 ]; [ 2 ]; [] ] in
  let extended = Generalize.extend_database t db in
  check Alcotest.int "size preserved" 3 (Database.size extended);
  check itemset "jacket+shoes gains outerwear, clothes, footwear"
    (set [ 0; 3; 4; 5; 6 ])
    (Database.get extended 0);
  check itemset "shirt gains clothes" (set [ 2; 6 ]) (Database.get extended 1);
  check itemset "empty stays empty" Itemset.empty (Database.get extended 2)

let test_extend_supports_are_monotone () =
  (* a category's support >= sum-free max of its descendants *)
  let t = clothes_taxonomy () in
  let db =
    Database.of_lists ~num_items:8 [ [ 0 ]; [ 1 ]; [ 0; 1 ]; [ 2 ]; [ 3 ] ]
  in
  let extended = Generalize.extend_database t db in
  let sup x = Database.support_count extended (set [ x ]) in
  check Alcotest.int "outerwear = jacket|skipants baskets" 3 (sup 4);
  check Alcotest.int "clothes = all clothing baskets" 4 (sup 6);
  check Alcotest.bool "category dominates member" true (sup 4 >= sup 0)

let test_clean_itemsets () =
  let t = clothes_taxonomy () in
  check Alcotest.bool "item+ancestor is unclean" false
    (Generalize.itemset_is_clean t (set [ 0; 4 ]));
  check Alcotest.bool "item+unrelated category is clean" true
    (Generalize.itemset_is_clean t (set [ 0; 5 ]));
  check Alcotest.bool "grandparent also unclean" false
    (Generalize.itemset_is_clean t (set [ 0; 6 ]));
  let cleaned =
    Generalize.clean_itemsets t [ (set [ 0; 4 ], 3); (set [ 0; 7 ], 2) ]
  in
  check (Alcotest.list Helpers.entry) "filtered" [ (set [ 0; 7 ], 2) ] cleaned

let test_prune_rules () =
  let t = clothes_taxonomy () in
  let mk a c =
    Olar_core.Rule.make ~antecedent:(set a) ~consequent:(set c) ~support_count:2
      ~antecedent_count:4
  in
  (* outerwear => hiking boots: informative (different subtrees) *)
  check Alcotest.bool "cross-subtree kept" true
    (Generalize.rule_is_informative t (mk [ 4 ] [ 7 ]));
  (* outerwear => jacket: consequent is a descendant of the antecedent *)
  check Alcotest.bool "descendant consequent dropped" false
    (Generalize.rule_is_informative t (mk [ 4 ] [ 0 ]));
  (* jacket => clothes: consequent is an ancestor *)
  check Alcotest.bool "ancestor consequent dropped" false
    (Generalize.rule_is_informative t (mk [ 0 ] [ 6 ]));
  (* jacket,outerwear => shoes: unclean union *)
  check Alcotest.bool "unclean union dropped" false
    (Generalize.rule_is_informative t (mk [ 0; 4 ] [ 3 ]));
  check Alcotest.int "prune keeps the one informative rule" 1
    (List.length
       (Generalize.prune_rules t [ mk [ 4 ] [ 7 ]; mk [ 4 ] [ 0 ]; mk [ 0 ] [ 6 ] ]))

let test_generalized_pipeline () =
  (* End-to-end: raw transactions never contain category 4, yet a rule
     with outerwear appears after extension. Buying jackets or ski pants
     strongly accompanies hiking boots. *)
  let t = clothes_taxonomy () in
  let rows =
    List.concat
      [
        List.init 20 (fun i -> [ (if i mod 2 = 0 then 0 else 1); 7 ]);
        List.init 10 (fun _ -> [ 2 ]);
        List.init 5 (fun _ -> [ 3 ]);
      ]
  in
  let db = Database.of_lists ~num_items:8 rows in
  let extended = Generalize.extend_database t db in
  let engine = Olar_core.Engine.at_threshold extended ~primary_support:0.05 in
  (* clean BEFORE generating: otherwise the unclean super-itemsets
     (jacket with its own category) dominate and the category rule is
     eliminated as redundant *)
  let clean =
    Olar_core.Engine.of_lattice
      (Generalize.clean_lattice t (Olar_core.Engine.lattice engine))
  in
  let rules = Olar_core.Engine.essential_rules clean ~minsup:0.3 ~minconf:0.9 in
  let informative = Generalize.prune_rules t rules in
  let outerwear_boots r =
    Itemset.mem 4 r.Olar_core.Rule.antecedent
    && Itemset.mem 7 r.Olar_core.Rule.consequent
  in
  check Alcotest.bool "outerwear => hiking boots found" true
    (List.exists outerwear_boots informative);
  (* and no informative rule relates an item to its own ancestor *)
  List.iter
    (fun r ->
      check Alcotest.bool
        ("informative: " ^ Olar_core.Rule.to_string r)
        true
        (Generalize.rule_is_informative t r))
    informative

let taxonomy_extension_prop =
  QCheck2.Test.make ~name:"generalize: extension adds exactly the ancestors"
    ~count:100 ~print:Helpers.db_print Helpers.db_gen
    (fun db ->
      (* chain taxonomy over the db's universe: i -> i+1 *)
      let n = Database.num_items db in
      let t =
        Taxonomy.of_parents ~num_items:n
          (List.init (n - 1) (fun i -> (i, i + 1)))
      in
      let extended = Generalize.extend_database t db in
      List.for_all
        (fun tid ->
          let txn = Database.get db tid in
          let ext = Database.get extended tid in
          (* expected: upward closure = items above the minimum *)
          let expected =
            if Itemset.is_empty txn then Itemset.empty
            else
              Itemset.of_list
                (List.init (n - Itemset.min_item txn) (fun k ->
                     Itemset.min_item txn + k))
          in
          Itemset.equal ext expected)
        (List.init (Database.size db) Fun.id))

(* ------------------------------------------------------------------ *)
(* Taxonomy_io *)

let test_io_parse () =
  let vocab, t =
    Taxonomy_io.parse
      [ "# comment"; ""; "jacket -> outerwear"; "outerwear -> clothes"; "boots->footwear" ]
  in
  check Alcotest.int "five names" 5 (Item.Vocab.size vocab);
  let id n = Option.get (Item.Vocab.id vocab n) in
  check (Alcotest.option Alcotest.int) "jacket's parent" (Some (id "outerwear"))
    (Taxonomy.parent t (id "jacket"));
  check (Alcotest.option Alcotest.int) "boots' parent" (Some (id "footwear"))
    (Taxonomy.parent t (id "boots"));
  check intl "jacket ancestors" [ id "outerwear"; id "clothes" ]
    (Taxonomy.ancestors t (id "jacket"))

let test_io_shared_vocab () =
  (* with the basket vocabulary passed in, existing item ids are kept *)
  let vocab, db = Basket_io.parse [ "jacket, boots"; "jacket" ] in
  let vocab', t = Taxonomy_io.parse ~vocab [ "jacket -> outerwear" ] in
  check Alcotest.int "vocab grew by one" 3 (Item.Vocab.size vocab');
  let extended = Generalize.extend_database t db in
  check Alcotest.int "jacket basket gains outerwear" 3
    (Itemset.cardinal (Database.get extended 0))

let test_io_malformed () =
  (match Taxonomy_io.parse [ "no arrow here" ] with
  | exception Taxonomy_io.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed");
  (match Taxonomy_io.parse [ " -> parent" ] with
  | exception Taxonomy_io.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed on empty child");
  (* structural errors surface as Invalid_argument from Taxonomy *)
  match Taxonomy_io.parse [ "a -> b"; "b -> a" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected cycle rejection"

let test_io_roundtrip () =
  let vocab, t =
    Taxonomy_io.parse [ "jacket -> outerwear"; "outerwear -> clothes" ]
  in
  let path = Filename.temp_file "olar_tax" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Taxonomy_io.save vocab t path;
      let vocab2, t2 = Taxonomy_io.load path in
      let id n = Option.get (Item.Vocab.id vocab2 n) in
      check (Alcotest.option Alcotest.int) "edge survives"
        (Some (id "outerwear"))
        (Taxonomy.parent t2 (id "jacket")))

let case name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "taxonomy",
      [
        case "structure" test_structure;
        case "validation" test_validation;
        case "extend database" test_extend_database;
        case "category supports" test_extend_supports_are_monotone;
        case "clean itemsets" test_clean_itemsets;
        case "prune rules" test_prune_rules;
        case "generalized pipeline" test_generalized_pipeline;
        QCheck_alcotest.to_alcotest taxonomy_extension_prop;
        case "io parse" test_io_parse;
        case "io shared vocab" test_io_shared_vocab;
        case "io malformed" test_io_malformed;
        case "io roundtrip" test_io_roundtrip;
      ] );
  ]
