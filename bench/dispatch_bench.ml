(* Dispatch-overhead microbench (the @dispatch-bench alias).

   Measures requests/sec at zero query work — the null query is a
   [Count_itemsets] at minsup 1.0 over a tiny lattice, so virtually all
   measured time is scheduling — through two schedulers:

   - [round*]: a local reimplementation of the retired round-based
     scheduler (one global job, a shared atomic cursor, a global mutex
     and a [Condition.broadcast] thundering-herd wakeup per round, a
     full barrier between rounds), at batch sizes 1 (the old server
     drainer's worst case: queue depth one) and 64 (its best case);
   - [submit*]: the live continuous-dispatch [Olar_serve.Pool], via
     [Pool.submit] — submit1 drains after every request (matching
     round1's one-at-a-time semantics), stream64 keeps up to 64
     requests in flight (matching round64's).

   Each mode runs at 1/2/4/8 domains. With --json PATH the results
   MERGE into an existing bench document under [experiments.dispatch]
   (or create a minimal one), so the same file accumulates the main
   harness's experiments and this sweep; compare_json gates every
   (mode, domains) point as [dispatch/<mode>/d<N>]. *)

open Olar_data
module Engine = Olar_core.Engine
module Session = Olar_serve.Session
module Pool = Olar_serve.Pool
module Jsonx = Olar_obs.Jsonx
module Timer = Olar_util.Timer

let params =
  Olar_datagen.Params.make
    ~over:
      {
        Olar_datagen.Params.default with
        num_items = 60;
        num_potential = 40;
        seed = 11;
      }
    ~avg_transaction_size:6.0 ~avg_itemset_size:3.0 ~num_transactions:500 ()

(* The null query: minsup 1.0 cuts above every vertex, so the engine
   answers from the cut without walking the lattice. *)
let null_req = Pool.Count_itemsets { containing = Itemset.empty; minsup = 1.0 }

let null_query session =
  ignore (Session.count_itemsets ~containing:Itemset.empty session ~minsup:1.0)

(* ------------------------------------------------------------------ *)
(* The retired round-based scheduler, ported verbatim from the old     *)
(* Pool internals so the comparison outlives the refactor: a global    *)
(* job record allocated per round, a shared claim cursor, a global     *)
(* mutex with a [Condition.broadcast] wakeup, per-request timing into  *)
(* a materialized batch array, the CAS-retry float busy accumulator,   *)
(* and — the expensive part — an [active] count that every worker must *)
(* check out of before the round's barrier lifts, so each round waits  *)
(* for d-1 workers to be scheduled even when the batch holds one       *)
(* request.                                                            *)
(* ------------------------------------------------------------------ *)

module Round = struct
  type job = {
    hi : int;
    next : int Atomic.t;
    out : (unit * float) array;
    mutable active : int;
    id : int;
  }

  type t = {
    d : int;
    sessions : Session.t array;
    mu : Mutex.t;
    work : Condition.t;
    finished : Condition.t;
    mutable job : job option;
    mutable job_seq : int;
    mutable stop : bool;
    served : int Atomic.t array;
    busy : float Atomic.t array;
    mutable workers : unit Domain.t array;
  }

  (* The old accounting, float CAS spin included. *)
  let note_work t idx dt =
    ignore (Atomic.fetch_and_add t.served.(idx) 1);
    let cell = t.busy.(idx) in
    let rec add () =
      let old = Atomic.get cell in
      if not (Atomic.compare_and_set cell old (old +. dt)) then add ()
    in
    add ()

  let timed session =
    let t0 = Timer.monotonic_s () in
    null_query session;
    Float.max 0.0 (Timer.monotonic_s () -. t0)

  let drain t idx job =
    let session = t.sessions.(idx) in
    let rec loop () =
      let i = Atomic.fetch_and_add job.next 1 in
      if i < job.hi then begin
        job.out.(i) <- ((), timed session);
        note_work t idx (snd job.out.(i));
        loop ()
      end
    in
    loop ()

  let worker_loop t idx =
    let last = ref 0 in
    let rec go () =
      Mutex.lock t.mu;
      let rec await () =
        if t.stop then begin
          Mutex.unlock t.mu;
          None
        end
        else
          match t.job with
          | Some j when j.id <> !last ->
            last := j.id;
            Mutex.unlock t.mu;
            Some j
          | _ ->
            Condition.wait t.work t.mu;
            await ()
      in
      match await () with
      | None -> ()
      | Some j ->
        drain t idx j;
        Mutex.lock t.mu;
        j.active <- j.active - 1;
        if j.active = 0 then Condition.broadcast t.finished;
        Mutex.unlock t.mu;
        go ()
    in
    go ()

  let create lat d =
    let sessions =
      Array.init d (fun _ ->
          Session.create ~budget_bytes:0 (Engine.of_lattice lat))
    in
    let t =
      {
        d;
        sessions;
        mu = Mutex.create ();
        work = Condition.create ();
        finished = Condition.create ();
        job = None;
        job_seq = 0;
        stop = false;
        served = Array.init d (fun _ -> Atomic.make 0);
        busy = Array.init d (fun _ -> Atomic.make 0.0);
        workers = [||];
      }
    in
    t.workers <-
      Array.init (d - 1) (fun k ->
          Domain.spawn (fun () -> worker_loop t (k + 1)));
    t

  (* One batch of [n] null queries — the old [run_segment], with the
     batch array materialized per round exactly as the old drainer
     did. *)
  let round t n =
    let out = Array.make n ((), 0.0) in
    if t.d = 1 then
      for i = 0 to n - 1 do
        out.(i) <- ((), timed t.sessions.(0));
        note_work t 0 (snd out.(i))
      done
    else begin
      Mutex.lock t.mu;
      t.job_seq <- t.job_seq + 1;
      let job =
        { hi = n; next = Atomic.make 0; out; active = t.d; id = t.job_seq }
      in
      t.job <- Some job;
      Condition.broadcast t.work;
      Mutex.unlock t.mu;
      drain t 0 job;
      Mutex.lock t.mu;
      job.active <- job.active - 1;
      while job.active > 0 do
        Condition.wait t.finished t.mu
      done;
      t.job <- None;
      Mutex.unlock t.mu
    end

  let shutdown t =
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mu;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
end

(* ------------------------------------------------------------------ *)
(* Modes                                                              *)
(* ------------------------------------------------------------------ *)

let run_round lat ~domains ~batch ~requests =
  let t = Round.create lat domains in
  let rounds = requests / batch in
  let elapsed =
    Timer.time (fun () ->
        for _ = 1 to rounds do
          Round.round t batch
        done)
    |> snd
  in
  Round.shutdown t;
  (rounds * batch, elapsed)

let run_submit lat ~domains ~window ~requests =
  Pool.with_pool ~domains ~budget_bytes:0 (Engine.of_lattice lat) (fun pool ->
      let deliver _ _ = () in
      let elapsed =
        Timer.time (fun () ->
            for i = 1 to requests do
              Pool.submit pool null_req deliver;
              if i mod window = 0 then Pool.drain pool
            done;
            Pool.drain pool)
        |> snd
      in
      (requests, elapsed))

type point = {
  mode : string;
  scheduler : string;
  domains : int;
  served : int;
  seconds : float;
}

let qps p = if p.seconds > 0.0 then float_of_int p.served /. p.seconds else 0.0

let modes =
  [
    ("round1", `Round 1);
    ("round64", `Round 64);
    ("submit1", `Submit 1);
    ("stream64", `Submit 64);
  ]

(* ------------------------------------------------------------------ *)
(* JSON merge                                                         *)
(* ------------------------------------------------------------------ *)

(* Fold the dispatch experiment into an existing bench document (the
   main harness's --json output) or start a minimal one, so a single
   file carries both sweeps and compare_json sees every series. *)
let write_json path points requests =
  let dispatch =
    Jsonx.Obj
      [
        ("requests", Jsonx.Int requests);
        ( "points",
          Jsonx.Arr
            (List.map
               (fun p ->
                 Jsonx.Obj
                   [
                     ("mode", Jsonx.Str p.mode);
                     ("scheduler", Jsonx.Str p.scheduler);
                     ("domains", Jsonx.Int p.domains);
                     ("queries", Jsonx.Int p.served);
                     ("seconds", Jsonx.Float p.seconds);
                     ("qps", Jsonx.Float (qps p));
                   ])
               points) );
      ]
  in
  let base =
    if Sys.file_exists path then
      let text = In_channel.with_open_bin path In_channel.input_all in
      match Jsonx.of_string text with
      | Ok doc -> doc
      | Error e -> failwith (Printf.sprintf "%s: %s" path e)
    else
      Jsonx.Obj
        [
          ("schema_version", Jsonx.Int 1);
          ("scale", Jsonx.Str "default");
          ("experiments", Jsonx.Obj []);
        ]
  in
  let doc =
    match base with
    | Jsonx.Obj fields ->
      let experiments =
        match Jsonx.member "experiments" base with
        | Some (Jsonx.Obj exps) ->
          Jsonx.Obj
            (List.remove_assoc "dispatch" exps @ [ ("dispatch", dispatch) ])
        | _ -> Jsonx.Obj [ ("dispatch", dispatch) ]
      in
      Jsonx.Obj
        (List.remove_assoc "experiments" fields @ [ ("experiments", experiments) ])
    | _ -> failwith (path ^ ": not a JSON object")
  in
  let oc = open_out path in
  output_string oc (Jsonx.to_string doc);
  output_char oc '\n';
  close_out oc;
  Printf.printf "[json] merged dispatch experiment into %s\n" path

(* ------------------------------------------------------------------ *)

let () =
  let requests = ref 10_000 in
  let domain_sweep = ref [ 1; 2; 4; 8 ] in
  let json = ref None in
  let rec parse = function
    | [] -> ()
    | "--requests" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 64 -> requests := n
      | _ -> failwith "--requests must be an integer >= 64");
      parse rest
    | "--domains" :: spec :: rest ->
      domain_sweep :=
        List.map
          (fun s ->
            match int_of_string_opt (String.trim s) with
            | Some d when d >= 1 -> d
            | _ -> failwith "--domains expects a comma-separated list, e.g. 1,2,4")
          (String.split_on_char ',' spec);
      parse rest
    | "--json" :: path :: rest ->
      json := Some path;
      parse rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let db = Olar_datagen.Quest.generate params in
  let lat =
    Engine.lattice (Engine.at_threshold db ~primary_support:0.01)
  in
  Printf.printf
    "dispatch microbench: %d null requests per point, lattice of %d vertices\n"
    !requests
    (Olar_core.Lattice.num_vertices lat);
  Printf.printf "%-10s %-10s %8s %10s %12s\n" "mode" "scheduler" "domains"
    "seconds" "req/s";
  let points =
    List.concat_map
      (fun d ->
        List.map
          (fun (mode, kind) ->
            let scheduler, (served, seconds) =
              match kind with
              | `Round batch ->
                ("round", run_round lat ~domains:d ~batch ~requests:!requests)
              | `Submit window ->
                ("submit", run_submit lat ~domains:d ~window ~requests:!requests)
            in
            let p = { mode; scheduler; domains = d; served; seconds } in
            Printf.printf "%-10s %-10s %8d %10.3f %12.0f\n%!" mode scheduler d
              seconds (qps p);
            p)
          modes)
      !domain_sweep
  in
  (* The headline: continuous dispatch vs the round scheduler at equal
     in-flight budget, per domain count. *)
  print_newline ();
  List.iter
    (fun d ->
      let find m =
        List.find_opt (fun p -> p.mode = m && p.domains = d) points
      in
      match (find "round1", find "submit1", find "round64", find "stream64") with
      | Some r1, Some s1, Some r64, Some s64 ->
        Printf.printf
          "d=%d: submit1 %.2fx vs round1, stream64 %.2fx vs round64\n" d
          (qps s1 /. qps r1) (qps s64 /. qps r64)
      | _ -> ())
    !domain_sweep;
  Option.iter (fun path -> write_json path points !requests) !json
