(* Serve -> capture -> replay smoke check (the @serve-smoke alias).

   Builds a deterministic engine, saves its lattice BEFORE serving,
   then runs an in-process olar-serve daemon with --record semantics
   and drives a canned workload — every query family plus a mid-stream
   append — through a real loopback socket from ONE client. A single
   closed-loop client makes the capture order the issue order (each
   admission queue round holds exactly one request), so the recorded
   jsonl replays digest-exactly against the saved pre-serving lattice.

   The replay itself is done by the driver rule with the real CLI:
     serve_smoke.exe LATTICE CAPTURE && olar replay CAPTURE -l LATTICE
   which exits nonzero on any digest mismatch.

   Usage: serve_smoke.exe LATTICE_OUT CAPTURE_OUT [QUERIES] *)

open Olar_data
module Engine = Olar_core.Engine
module Lattice = Olar_core.Lattice
module Server = Olar_net.Server
module Http = Olar_net.Http
module Record = Olar_replay.Record
module Fnv = Olar_replay.Fnv

let primary_support = 0.01

(* Same deterministic dataset as replay_smoke.ml. *)
let params =
  Olar_datagen.Params.make
    ~over:
      {
        Olar_datagen.Params.default with
        num_items = 120;
        num_potential = 200;
        seed = 7;
      }
    ~avg_transaction_size:8.0 ~avg_itemset_size:3.0 ~num_transactions:2000 ()

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("serve_smoke: " ^ m); exit 1) fmt

(* A bare query key (the POST /query wire body, via key_to_json_line). *)
let key ?(containing = Itemset.empty) ?minsup ?minconf ?k ?(delta = [])
    ?(num_items = 0) kind =
  {
    Record.seq = 0;
    kind;
    containing;
    antecedent_includes = Itemset.empty;
    consequent_includes = Itemset.empty;
    allow_empty_antecedent = false;
    minsup;
    minconf;
    k;
    delta;
    delta_num_items = num_items;
    cache = Record.Passthrough;
    digest = Fnv.empty;
    result_size = 0;
    latency_s = 0.0;
    vertices = 0;
    heap_pops = 0;
    epoch = 0;
  }

(* The canned workload: every family, support levels at or above the
   primary threshold, one append in the middle. Deterministic. *)
let workload engine db num_queries =
  let lat = Engine.lattice engine in
  let singletons = ref [] in
  let deepest = ref Itemset.empty in
  for v = 0 to Lattice.num_vertices lat - 1 do
    let x = Lattice.itemset lat v in
    if Itemset.cardinal x = 1 then singletons := x :: !singletons;
    if Itemset.cardinal x > Itemset.cardinal !deepest then deepest := x
  done;
  let singletons = Array.of_list (List.rev !singletons) in
  if Array.length singletons = 0 then die "no frequent singletons";
  let p = Engine.primary_threshold engine in
  let levels = [| p; p *. 1.5; p *. 2.5; p *. 4.0 |] in
  let confs = [| 0.2; 0.5; 0.8 |] in
  let rng = Random.State.make [| 0x5eed |] in
  List.init num_queries (fun i ->
      let containing =
        if i mod 3 = 0 then Itemset.empty
        else singletons.(Random.State.int rng (Array.length singletons))
      in
      let minsup = levels.(Random.State.int rng (Array.length levels)) in
      let minconf = confs.(Random.State.int rng (Array.length confs)) in
      if i = num_queries / 2 then
        let rows =
          List.init 5 (fun _ ->
              Itemset.to_list
                singletons.(Random.State.int rng (Array.length singletons)))
        in
        key Record.Append ~delta:rows ~num_items:(Database.num_items db)
      else
        match i mod 8 with
        | 0 -> key Record.Find_itemsets ~containing ~minsup
        | 1 -> key Record.Count_itemsets ~containing ~minsup
        | 2 -> key Record.Essential_rules ~containing ~minsup ~minconf
        | 3 -> key Record.All_rules ~containing ~minsup ~minconf
        | 4 -> key Record.Single_consequent_rules ~containing ~minsup ~minconf
        | 5 ->
          key Record.Support_for_k_itemsets ~containing
            ~k:(1 + Random.State.int rng 50)
        | 6 ->
          key Record.Support_for_k_rules ~containing:containing ~minconf
            ~k:(1 + Random.State.int rng 20)
        | _ -> key Record.Boundary ~containing:!deepest ~minconf)

(* Minimal blocking loopback client. *)
let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let post fd buf off body =
  let s = Http.render_request ~meth:"POST" ~target:"/query" body in
  let sb = Bytes.unsafe_of_string s in
  let rec wr o =
    if o < String.length s then
      wr (o + Unix.write fd sb o (String.length s - o))
  in
  wr 0;
  let chunk = Bytes.create 8192 in
  let rec rd () =
    match Http.parse_response (Buffer.contents buf) ~off:!off with
    | Http.Complete (resp, used) ->
      off := !off + used;
      resp.Http.status
    | Http.Failed { status; reason } -> die "malformed response: %d %s" status reason
    | Http.Incomplete -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> die "server closed the connection"
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        rd ())
  in
  rd ()

let () =
  let lattice_path, capture_path, num_queries =
    match Sys.argv with
    | [| _; l; c |] -> (l, c, 60)
    | [| _; l; c; n |] -> (l, c, int_of_string n)
    | _ -> die "usage: serve_smoke LATTICE_OUT CAPTURE_OUT [QUERIES]"
  in
  let db = Olar_datagen.Quest.generate params in
  let engine =
    Engine.at_threshold ~obs:(Olar_obs.Obs.create ()) db ~primary_support
  in
  (* save the PRE-serving state: the capture must replay against the
     lattice as it was before the served append mutated the engine *)
  Engine.save engine lattice_path;
  (try Sys.remove capture_path with Sys_error _ -> ());
  let config =
    { Server.default_config with Server.port = 0; record = Some capture_path }
  in
  let keys = workload engine db num_queries in
  let served =
    Server.with_server ~config ~domains:2 ~budget_bytes:0 engine (fun srv ->
        let fd = connect (Server.port srv) in
        let buf = Buffer.create 8192 in
        let off = ref 0 in
        let served =
          List.fold_left
            (fun n k ->
              let body = Record.key_to_json_line k in
              match post fd buf off body with
              | 200 -> n + 1
              | s -> die "query %d answered %d (body %s)" n s body)
            0 keys
        in
        (try Unix.close fd with _ -> ());
        served)
  in
  if served <> num_queries then
    die "served %d of %d queries" served num_queries;
  (* the server records every successfully served query *)
  let lines = ref 0 in
  In_channel.with_open_text capture_path (fun ic ->
      try
        while true do
          ignore (input_line ic);
          incr lines
        done
      with End_of_file -> ());
  if !lines <> num_queries then
    die "capture holds %d records, expected %d" !lines num_queries;
  Printf.printf "serve smoke: served and captured %d queries over loopback\n"
    num_queries
