(* Live-health smoke check (the @health-smoke alias).

   Two phases against in-process olar-serve daemons over real loopback
   sockets, driven through the same lib/net Client that olar top uses:

   1. A healthy server under a steady single-client load must grade
      "ok" on /healthz, expose a live sliding window on /statusz
      (non-zero qps and windowed execute quantiles), bring the
      eventring consumer up (GC pauses observed, clock bridge
      calibrated) and export the per-domain GC series plus the health
      gauge on /metrics.

   2. A queue_depth=1 server under a multi-client flood sheds; the
      /healthz verdict must then agree exactly with the pure
      Olar_net.Health engine evaluated over the window /statusz itself
      reports — the differential that pins endpoint, window folding
      and grading together.

   Exit 0 on success, 1 with a message otherwise. *)

module Engine = Olar_core.Engine
module Server = Olar_net.Server
module Client = Olar_net.Client
module Health = Olar_net.Health
module Jsonx = Olar_obs.Jsonx

let die fmt =
  Printf.ksprintf (fun m -> prerr_endline ("health_smoke: " ^ m); exit 1) fmt

(* Same deterministic dataset as serve_smoke.ml. *)
let params =
  Olar_datagen.Params.make
    ~over:
      {
        Olar_datagen.Params.default with
        num_items = 120;
        num_potential = 200;
        seed = 7;
      }
    ~avg_transaction_size:8.0 ~avg_itemset_size:3.0 ~num_transactions:2000 ()

let get_json url path =
  match Client.get ~url path with
  | Ok (status, body) -> (
    match Jsonx.of_string body with
    | Ok j -> (status, j)
    | Error e -> die "%s body not JSON: %s" path e)
  | Error e -> die "GET %s failed: %s" path e

let num j p =
  match Option.bind (Jsonx.path p j) Jsonx.number with
  | Some f -> f
  | None -> die "document lacks numeric %s" (String.concat "." p)

let str j name =
  match Option.bind (Jsonx.member name j) Jsonx.to_str with
  | Some s -> s
  | None -> die "document lacks string %S" name

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* All bodies stay at or above the primary threshold so every served
   answer is a 200; all_rules at a low minconf is the allocation-heavy
   one that keeps the minor GC busy. *)
let bodies =
  [|
    {|{"kind":"all_rules","minsup":0.02,"minconf":0.2}|};
    {|{"kind":"find","minsup":0.015}|};
    {|{"kind":"count","minsup":0.01}|};
    {|{"kind":"essential_rules","minsup":0.02,"minconf":0.5}|};
  |]

let healthy_phase engine config =
  Server.with_server ~config ~domains:2 ~budget_bytes:0 engine (fun srv ->
      let url = Server.url srv in
      for i = 0 to 399 do
        let body = bodies.(i mod Array.length bodies) in
        match Client.post ~url "/query" body with
        | Ok (200, _) -> ()
        | Ok (s, b) -> die "query %d answered %d: %s" i s b
        | Error e -> die "query %d failed: %s" i e
      done;
      (* the verdict *)
      let status, hz = get_json url "/healthz" in
      if status <> 200 then die "healthz answered %d" status;
      (match str hz "state" with
      | "ok" -> ()
      | s -> die "healthy server grades %S" s);
      if num hz [ "queries" ] <= 0.0 then die "healthz window saw no queries";
      (* the sliding window *)
      let _, sz = get_json url "/statusz" in
      if num sz [ "window"; "qps" ] <= 0.0 then die "windowed qps is zero";
      if num sz [ "window"; "phases"; "execute"; "count" ] <= 0.0 then
        die "no windowed execute samples";
      if num sz [ "window"; "phases"; "execute"; "p99_us" ] <= 0.0 then
        die "windowed execute p99 is zero";
      (* the eventring consumer: pauses observed, clock bridge up. The
         poller ticks every 50ms, so allow it a beat. *)
      let rec gc_live attempts =
        let _, sz = get_json url "/statusz" in
        let pauses = num sz [ "gc"; "pauses" ] in
        let calibrated =
          match Jsonx.path [ "gc"; "calibrated" ] sz with
          | Some (Jsonx.Bool b) -> b
          | _ -> die "gc section lacks calibrated"
        in
        if pauses > 0.0 && calibrated then pauses
        else if attempts >= 100 then
          die "gc never materialized (pauses %g, calibrated %b)" pauses
            calibrated
        else begin
          Unix.sleepf 0.05;
          gc_live (attempts + 1)
        end
      in
      let pauses = gc_live 0 in
      (* the exposition *)
      (match Client.get ~url "/metrics" with
      | Ok (200, body) ->
        List.iter
          (fun series ->
            if not (contains body series) then die "metrics lack %s" series)
          [
            "olar_gc_pause_seconds_bucket{";
            "olar_gc_minor_total{";
            "olar_health_state";
          ]
      | Ok (s, _) -> die "metrics answered %d" s
      | Error e -> die "metrics scrape failed: %s" e);
      Printf.printf
        "health smoke: healthy phase ok (400 queries, %.0f GC pauses attributed)\n"
        pauses)

let flood_phase engine config =
  let config = { config with Server.queue_depth = 1 } in
  Server.with_server ~config ~domains:2 ~budget_bytes:0 engine (fun srv ->
      let url = Server.url srv in
      let flood_body = {|{"kind":"all_rules","minsup":0.01,"minconf":0.05}|} in
      let threads =
        List.init 6 (fun ci ->
            Thread.create
              (fun () ->
                for i = 0 to 39 do
                  match Client.post ~url "/query" flood_body with
                  | Ok ((200 | 429 | 503), _) -> ()
                  | Ok (s, b) -> die "flood client %d/%d got %d: %s" ci i s b
                  | Error e -> die "flood client %d/%d failed: %s" ci i e
                done)
              ())
      in
      List.iter Thread.join threads;
      (* fold the server's own window into a reading and grade it with
         the pure engine; /healthz must say exactly the same thing *)
      let _, sz = get_json url "/statusz" in
      let executed = int_of_float (num sz [ "window"; "executed" ]) in
      let shed = int_of_float (num sz [ "window"; "shed" ]) in
      let errors_5xx = int_of_float (num sz [ "window"; "http_5xx" ]) in
      if shed = 0 then die "flood shed nothing - the queue bound never bit";
      let expected =
        Health.evaluate Health.default_thresholds
          {
            Health.window_s = num sz [ "window"; "covered_s" ];
            executed;
            shed;
            errors_5xx;
            exec_p99_s = nan;
          }
      in
      let status, hz = get_json url "/healthz" in
      let state = str hz "state" in
      if state <> Health.state_name expected then
        die
          "healthz grades %S but the statusz window (executed %d, shed %d, \
           5xx %d) grades %S"
          state executed shed errors_5xx
          (Health.state_name expected);
      if status <> Health.status_code expected then
        die "healthz answered %d, the %S verdict demands %d" status state
          (Health.status_code expected);
      Printf.printf
        "health smoke: flood phase ok (%d windowed executed, %d shed -> %s)\n"
        executed shed state)

let () =
  let db = Olar_datagen.Quest.generate params in
  let engine =
    Engine.at_threshold ~obs:(Olar_obs.Obs.create ()) db ~primary_support:0.01
  in
  let config = { Server.default_config with Server.port = 0 } in
  healthy_phase engine config;
  flood_phase engine config
