(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (Section 6), plus Bechamel micro-benchmarks of the core
   operations and ablations of the design choices called out in
   DESIGN.md.

     dune exec bench/main.exe                 # all experiments, D10K scale
     dune exec bench/main.exe -- --full       # paper scale (D100K)
     dune exec bench/main.exe -- --experiment fig10,table3

   Numbers to compare against the paper are the *shapes*: which curve
   wins, how the threshold bottoms out, the linearity of online time in
   output size — not 1998 wall-clock values. Machine-independent work
   counters are printed alongside times. *)

open Olar_data
module Jsonx = Olar_obs.Jsonx

let line () = print_endline (String.make 78 '-')

(* Machine-readable results (--json PATH): experiments append entries
   here; the driver assembles and writes the document at the end. *)
let json_path : string option ref = ref None
let json_experiments : (string * Jsonx.t) list ref = ref []
let record_json name doc = json_experiments := (name, doc) :: !json_experiments

let section title =
  print_newline ();
  line ();
  Printf.printf "%s\n" title;
  line ()

(* ------------------------------------------------------------------ *)
(* Configuration *)

type config = {
  full : bool;
  num_items : int;
  transactions : int;
  budget_sweep : int list; (* itemset budgets for figs 8-9 *)
  seed : int;
  domains : int option; (* parallel counting domains for preprocessing *)
}

let default_config =
  {
    full = false;
    num_items = 1000;
    transactions = 10_000;
    budget_sweep = [ 500; 1_000; 2_000; 5_000; 10_000; 15_000 ];
    seed = 42;
    domains = None;
  }

let full_config =
  {
    full = true;
    num_items = 1000;
    transactions = 100_000;
    budget_sweep = [ 1_000; 2_000; 5_000; 10_000; 20_000; 50_000 ];
    seed = 42;
    domains = None;
  }

(* ------------------------------------------------------------------ *)
(* Dataset and engine caches (several experiments share them) *)

let db_cache : (string, Database.t) Hashtbl.t = Hashtbl.create 8

let dataset config ~t ~i =
  let params =
    {
      (Olar_datagen.Params.make ~avg_transaction_size:(float_of_int t)
         ~avg_itemset_size:(float_of_int i) ~num_transactions:config.transactions
         ())
      with
      Olar_datagen.Params.num_items = config.num_items;
      seed = config.seed;
    }
  in
  let name = Olar_datagen.Params.name params in
  match Hashtbl.find_opt db_cache name with
  | Some db -> (name, db)
  | None ->
    let db, dt = Olar_util.Timer.time (fun () -> Olar_datagen.Quest.generate params) in
    Printf.printf "[data] generated %s in %.2fs (avg transaction %.1f items)\n%!"
      name dt (Database.avg_transaction_size db);
    Hashtbl.add db_cache name db;
    (name, db)

let engine_cache : (string * float, Olar_core.Engine.t) Hashtbl.t = Hashtbl.create 8

(* Preprocessed engine over a dataset at a fractional primary support. *)
let engine config ~t ~i ~primary =
  let name, db = dataset config ~t ~i in
  match Hashtbl.find_opt engine_cache (name, primary) with
  | Some e -> e
  | None ->
    let e, dt =
      Olar_util.Timer.time (fun () ->
          Olar_core.Engine.at_threshold ?domains:config.domains db
            ~primary_support:primary)
    in
    Printf.printf
      "[prep] %s preprocessed at %.3f%%: %d itemsets, %d edges (%.2fs)\n%!" name
      (100.0 *. primary)
      (Olar_core.Engine.num_primary_itemsets e)
      (Olar_core.Lattice.num_edges (Olar_core.Engine.lattice e))
      dt;
    Hashtbl.add engine_cache (name, primary) e;
    e

(* ------------------------------------------------------------------ *)
(* Figures 8 & 9: primary threshold and preprocessing effort vs the
   number of itemsets prestored. One threshold search serves both. *)

type sweep_point = {
  budget : int;
  threshold_pct : float;
  generated : int;
  probes : int;
  work : int; (* candidates counted + hash-pruned: machine-independent *)
  seconds : float;
}

let sweep_cache : (string * int, sweep_point) Hashtbl.t = Hashtbl.create 32

let sweep_point config ~t ~i ~budget =
  let name, db = dataset config ~t ~i in
  match Hashtbl.find_opt sweep_cache (name, budget) with
  | Some p -> p
  | None ->
    let stats = Olar_mining.Stats.create () in
    let result, seconds =
      Olar_util.Timer.time (fun () ->
          Olar_mining.Threshold.optimized ~stats db ~target:budget
            ~slack:(budget / 20))
    in
    let p =
      {
        budget;
        threshold_pct =
          100.0
          *. float_of_int result.Olar_mining.Threshold.threshold
          /. float_of_int (Database.size db);
        generated = Olar_mining.Frequent.total result.Olar_mining.Threshold.itemsets;
        probes = List.length result.Olar_mining.Threshold.probes;
        work = Olar_mining.Stats.total_work stats;
        seconds;
      }
    in
    Hashtbl.add sweep_cache (name, budget) p;
    p

let fig89_datasets = [ (10, 4); (10, 6); (20, 6) ]

let fig8 config =
  List.iter (fun (t, i) -> ignore (dataset config ~t ~i)) fig89_datasets;
  section
    "Figure 8: primary threshold vs number of itemsets prestored\n\
     (threshold drops steeply, then bottoms out as the itemset space is exhausted)";
  Printf.printf "%-10s" "budget N";
  List.iter
    (fun (t, i) -> Printf.printf "%16s" (fst (dataset config ~t ~i)))
    fig89_datasets;
  print_newline ();
  List.iter
    (fun budget ->
      Printf.printf "%-10d" budget;
      List.iter
        (fun (t, i) ->
          let p = sweep_point config ~t ~i ~budget in
          Printf.printf "%15.4f%%" p.threshold_pct)
        fig89_datasets;
      print_newline ())
    config.budget_sweep

let fig9 config =
  List.iter (fun (t, i) -> ignore (dataset config ~t ~i)) fig89_datasets;
  section
    "Figure 9: preprocessing effort vs number of itemsets prestored\n\
     (effort = candidates examined by the threshold search; seconds in parens)";
  Printf.printf "%-10s" "budget N";
  List.iter
    (fun (t, i) -> Printf.printf "%22s" (fst (dataset config ~t ~i)))
    fig89_datasets;
  print_newline ();
  List.iter
    (fun budget ->
      Printf.printf "%-10d" budget;
      List.iter
        (fun (t, i) ->
          let p = sweep_point config ~t ~i ~budget in
          Printf.printf "%14d (%5.2fs)" p.work p.seconds)
        fig89_datasets;
      print_newline ())
    config.budget_sweep

(* ------------------------------------------------------------------ *)
(* Figure 10: online processing time vs number of rules generated. *)

let fig10 config =
  section
    "Figure 10: online running time vs number of rules generated\n\
     (response time and search work scale with the output, not the prestore)";
  Printf.printf "%-14s %-9s %-7s %-9s %-11s %-10s %-12s\n" "dataset" "minsup%"
    "conf%" "rules" "time (ms)" "work" "us per rule";
  let jpoints = ref [] in
  List.iter
    (fun ((t, i), primary, supports) ->
      let name, _ = dataset config ~t ~i in
      let e = engine config ~t ~i ~primary in
      let lat = Olar_core.Engine.lattice e in
      let points = ref [] in
      List.iter
        (fun minsup ->
          List.iter
            (fun minconf ->
              let work = Olar_util.Timer.Counter.create "work" in
              let rules, dt =
                Olar_util.Timer.time (fun () ->
                    Olar_core.Rulegen.essential_rules ~work lat
                      ~minsup:(Olar_core.Engine.count_of_support e minsup)
                      ~confidence:(Olar_core.Conf.of_float minconf))
              in
              points :=
                (minsup, minconf, List.length rules, dt,
                 Olar_util.Timer.Counter.value work)
                :: !points)
            [ 0.9; 0.7; 0.5 ])
        supports;
      let points =
        List.sort (fun (_, _, a, _, _) (_, _, b, _, _) -> Int.compare a b) !points
      in
      List.iter
        (fun (s, c, n, dt, w) ->
          jpoints :=
            Jsonx.Obj
              [
                ("dataset", Jsonx.Str name);
                ("minsup", Jsonx.Float s);
                ("minconf", Jsonx.Float c);
                ("rules", Jsonx.Int n);
                ("seconds", Jsonx.Float dt);
                ("work", Jsonx.Int w);
              ]
            :: !jpoints;
          Printf.printf "%-14s %-9.3f %-7.0f %-9d %-11.3f %-10d %-12.2f\n" name
            (100.0 *. s) (100.0 *. c) n (1000.0 *. dt) w
            (if n = 0 then 0.0 else 1e6 *. dt /. float_of_int n))
        points)
    [
      ((10, 4), 0.002, [ 0.006; 0.005; 0.004; 0.003; 0.0025; 0.002 ]);
      ((20, 6), 0.005, [ 0.014; 0.012; 0.01; 0.008; 0.007; 0.006 ]);
    ];
  record_json "fig10" (Jsonx.Obj [ ("points", Jsonx.Arr (List.rev !jpoints)) ])

(* ------------------------------------------------------------------ *)
(* Table 3: direct DHP-from-scratch vs online response time. *)

let table3 config =
  section
    "Table 3: response time, DHP from scratch vs online lattice queries\n\
     (the online column answers from the preprocessed lattice alone)";
  Printf.printf "%-14s %-6s %-7s %-12s %-12s %-9s %-8s\n" "dataset" "conf%"
    "sup%" "DHP (s)" "online (s)" "speedup" "rules";
  let rows =
    (* the paper's four (dataset, confidence) settings; supports keep the
       paper's 3:3:2:5 proportions, lifted so the default-scale outputs
       stay tabular (the planted patterns are denser than the authors') *)
    [ (10, 4, 0.9, 0.0045); (10, 6, 0.9, 0.0045); (20, 4, 0.9, 0.003); (20, 6, 0.9, 0.0075) ]
  in
  List.iter
    (fun (t, i, minconf, minsup) ->
      let name, db = dataset config ~t ~i in
      (* preprocess once at half the query support *)
      let e = engine config ~t ~i ~primary:(0.6 *. minsup) in
      let minsup_count = Database.count_of_fraction db minsup in
      let direct =
        Olar_baseline.Direct.query db ~minsup:minsup_count
          ~confidence:(Olar_core.Conf.of_float minconf)
      in
      let direct_s =
        direct.Olar_baseline.Direct.mining_seconds
        +. direct.Olar_baseline.Direct.rulegen_seconds
      in
      let rules, online_s =
        Olar_util.Timer.time (fun () ->
            Olar_core.Engine.essential_rules e ~minsup ~minconf)
      in
      Printf.printf "%-14s %-6.0f %-7.2f %-12.3f %-12.5f %8.0fx %-8d\n" name
        (100.0 *. minconf) (100.0 *. minsup) direct_s online_s
        (direct_s /. max 1e-9 online_s)
        (List.length rules))
    rows

(* ------------------------------------------------------------------ *)
(* Figures 11 & 12: redundancy ratio vs confidence and support. *)

let fig11 config =
  List.iter
    (fun (t, i) -> ignore (engine config ~t ~i ~primary:0.0025))
    [ (10, 4); (10, 6) ];
  section
    "Figure 11: redundancy ratio vs confidence (fixed minsup)\n\
     (total rules / essential rules; modest sensitivity to confidence)";
  let minsup = 0.005 in
  Printf.printf "%-8s" "conf%";
  List.iter
    (fun (t, i) -> Printf.printf "%28s" (fst (dataset config ~t ~i)))
    [ (10, 4); (10, 6) ];
  Printf.printf "\n%-8s%28s%28s\n" "" "total/essential (ratio)" "total/essential (ratio)";
  List.iter
    (fun conf ->
      Printf.printf "%-8.0f" (100.0 *. conf);
      List.iter
        (fun (t, i) ->
          let e = engine config ~t ~i ~primary:0.0025 in
          let r = Olar_core.Engine.redundancy e ~minsup ~minconf:conf in
          Printf.printf "%15d/%-5d (%5.2f)" r.Olar_core.Rulegen.total_rules
            r.Olar_core.Rulegen.essential_count
            r.Olar_core.Rulegen.redundancy_ratio)
        [ (10, 4); (10, 6) ];
      print_newline ())
    [ 0.95; 0.9; 0.8; 0.7; 0.6; 0.5 ]

let fig12 config =
  List.iter
    (fun (t, i) -> ignore (engine config ~t ~i ~primary:0.0025))
    [ (10, 4); (10, 6) ];
  section
    "Figure 12: redundancy ratio vs support (fixed minconf = 50%)\n\
     (redundancy is much more sensitive to support: it grows as support drops)";
  Printf.printf "%-10s" "minsup%";
  List.iter
    (fun (t, i) -> Printf.printf "%28s" (fst (dataset config ~t ~i)))
    [ (10, 4); (10, 6) ];
  Printf.printf "\n%-10s%28s%28s\n" "" "total/essential (ratio)" "total/essential (ratio)";
  List.iter
    (fun minsup ->
      Printf.printf "%-10.3f" (100.0 *. minsup);
      List.iter
        (fun (t, i) ->
          let e = engine config ~t ~i ~primary:0.0025 in
          let r = Olar_core.Engine.redundancy e ~minsup ~minconf:0.5 in
          Printf.printf "%15d/%-5d (%5.2f)" r.Olar_core.Rulegen.total_rules
            r.Olar_core.Rulegen.essential_count
            r.Olar_core.Rulegen.redundancy_ratio)
        [ (10, 4); (10, 6) ];
      print_newline ())
    [ 0.008; 0.007; 0.006; 0.005; 0.0045; 0.004 ]

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 4) *)

(* Ablation 1: the children-sorted-by-support invariant. The search
   normally stops scanning a child list at the first child below the
   cut; the ablated variant must examine every child. *)
let ablate_sort config =
  section
    "Ablation: early-stop on support-sorted child lists (FindItemsets)\n\
     (work = vertices expanded + child links inspected)";
  let e = engine config ~t:10 ~i:4 ~primary:0.002 in
  let lat = Olar_core.Engine.lattice e in
  let search_all_children ~minsup =
    (* identical traversal, no early stop *)
    let marks = Olar_core.Lattice.fresh_marks lat in
    let stack = ref [ Olar_core.Lattice.root lat ] in
    let work = ref 0 and out = ref 0 in
    Olar_util.Bitset.add marks (Olar_core.Lattice.root lat);
    let rec loop () =
      match !stack with
      | [] -> ()
      | v :: rest ->
        stack := rest;
        incr work;
        Array.iter
          (fun child ->
            incr work;
            if
              Olar_core.Lattice.support lat child >= minsup
              && not (Olar_util.Bitset.mem marks child)
            then begin
              Olar_util.Bitset.add marks child;
              incr out;
              stack := child :: !stack
            end)
          (Olar_core.Lattice.children lat v);
        loop ()
    in
    loop ();
    (!out, !work)
  in
  Printf.printf "%-10s %-9s %-14s %-14s %-8s\n" "minsup%" "output"
    "work (sorted)" "work (ablated)" "saving";
  List.iter
    (fun minsup_pct ->
      let minsup =
        Olar_core.Engine.count_of_support e (minsup_pct /. 100.0)
      in
      let work = Olar_util.Timer.Counter.create "w" in
      let out =
        Olar_core.Query.count_itemsets ~work lat ~containing:Itemset.empty ~minsup
      in
      let out_ablated, work_ablated = search_all_children ~minsup in
      assert (out = out_ablated);
      let sorted_work = Olar_util.Timer.Counter.value work in
      Printf.printf "%-10.2f %-9d %-14d %-14d %7.1f%%\n" minsup_pct out
        sorted_work work_ablated
        (100.0 *. (1.0 -. (float_of_int sorted_work /. float_of_int work_ablated))))
    [ 1.0; 0.5; 0.3; 0.2 ]

(* Ablation 2: boundary memoisation during essential-rule generation.
   The ablated variant recomputes each child boundary for every parent. *)
let ablate_cache config =
  section
    "Ablation: boundary caching in essential-rule generation\n\
     (the child boundary is reused for rule output and parent pruning)";
  let e = engine config ~t:10 ~i:4 ~primary:0.002 in
  let lat = Olar_core.Engine.lattice e in
  let uncached ~minsup ~confidence =
    let large =
      Olar_core.Query.find_itemsets lat ~containing:Itemset.empty ~minsup
    in
    let n = ref 0 in
    List.iter
      (fun x ->
        if Olar_core.Lattice.cardinal lat x >= 2 then begin
          let own =
            Olar_core.Boundary.find_boundary lat ~target:x ~confidence
          in
          if own <> [] then begin
            let pruned = Hashtbl.create 16 in
            Array.iter
              (fun child ->
                if Olar_core.Lattice.support lat child >= minsup then
                  List.iter
                    (fun y -> Hashtbl.replace pruned y ())
                    (Olar_core.Boundary.find_boundary lat ~target:child
                       ~confidence))
              (Olar_core.Lattice.children lat x);
            List.iter (fun y -> if not (Hashtbl.mem pruned y) then incr n) own
          end
        end)
      large;
    !n
  in
  Printf.printf "%-10s %-8s %-14s %-16s\n" "minsup%" "rules" "cached (ms)"
    "uncached (ms)";
  List.iter
    (fun minsup_pct ->
      let minsup = Olar_core.Engine.count_of_support e (minsup_pct /. 100.0) in
      let confidence = Olar_core.Conf.of_float 0.5 in
      let rules, cached_s =
        Olar_util.Timer.time (fun () ->
            Olar_core.Rulegen.essential_rules lat ~minsup ~confidence)
      in
      let n, uncached_s =
        Olar_util.Timer.time (fun () -> uncached ~minsup ~confidence)
      in
      assert (n = List.length rules);
      Printf.printf "%-10.2f %-8d %-14.2f %-16.2f\n" minsup_pct n
        (1000.0 *. cached_s) (1000.0 *. uncached_s))
    [ 0.5; 0.3; 0.2 ]

(* Ablation 3: DHP's hash filter and trimming vs plain Apriori as the
   preprocessing subroutine. *)
let ablate_miner config =
  section
    "Ablation: DHP hash filtering + trimming vs plain Apriori (preprocessing)";
  Printf.printf "%-14s %-10s %-12s %-12s %-12s %-12s\n" "dataset" "minsup%"
    "apriori (s)" "dhp (s)" "cand (apr)" "cand (dhp)";
  List.iter
    (fun ((t, i), minsup_pct) ->
      let name, db = dataset config ~t ~i in
      let minsup = Database.count_of_fraction db (minsup_pct /. 100.0) in
      let sa = Olar_mining.Stats.create () and sd = Olar_mining.Stats.create () in
      let fa, ta =
        Olar_util.Timer.time (fun () -> Olar_mining.Apriori.mine ~stats:sa db ~minsup)
      in
      let fd, td =
        Olar_util.Timer.time (fun () -> Olar_mining.Dhp.mine ~stats:sd db ~minsup)
      in
      assert (Olar_mining.Frequent.total fa = Olar_mining.Frequent.total fd);
      Printf.printf "%-14s %-10.2f %-12.2f %-12.2f %-12d %-12d\n" name minsup_pct
        ta td
        (Olar_util.Timer.Counter.value sa.Olar_mining.Stats.candidates)
        (Olar_util.Timer.Counter.value sd.Olar_mining.Stats.candidates))
    [ ((10, 4), 0.2); ((10, 6), 0.2); ((20, 6), 0.3) ]

(* ------------------------------------------------------------------ *)
(* Scaling: the online claim of contribution (1) — response time is
   independent of the size of the transaction data. The direct approach
   scans the database per query; the lattice query does not. *)

let scaling config =
  section
    "Scaling: online response vs database size (fixed support fractions)\n\
     (direct mining grows with |D|; the online query tracks only its output)";
  Printf.printf "%-10s %-9s %-11s %-12s %-13s %-9s\n" "txns" "prep (s)"
    "direct (s)" "online (ms)" "rules" "us/rule";
  let sizes =
    if config.full then [ 20_000; 50_000; 100_000; 200_000 ]
    else [ 2_000; 5_000; 10_000; 20_000 ]
  in
  List.iter
    (fun transactions ->
      let params =
        {
          (Olar_datagen.Params.make ~avg_transaction_size:10.0
             ~avg_itemset_size:4.0 ~num_transactions:transactions ())
          with
          Olar_datagen.Params.num_items = config.num_items;
          seed = config.seed;
        }
      in
      let db = Olar_datagen.Quest.generate params in
      let engine, prep_s =
        Olar_util.Timer.time (fun () ->
            Olar_core.Engine.at_threshold ?domains:config.domains db
              ~primary_support:0.003)
      in
      let minsup = 0.005 and minconf = 0.9 in
      let direct, direct_s =
        Olar_util.Timer.time (fun () ->
            Olar_mining.Dhp.mine db
              ~minsup:(Database.count_of_fraction db minsup))
      in
      ignore direct;
      let rules, online_s =
        Olar_util.Timer.time (fun () ->
            Olar_core.Engine.essential_rules engine ~minsup ~minconf)
      in
      let n = List.length rules in
      Printf.printf "%-10d %-9.2f %-11.3f %-13.3f %-13d %-9.2f\n" transactions
        prep_s direct_s (1000.0 *. online_s) n
        (if n = 0 then 0.0 else 1e6 *. online_s /. float_of_int n))
    sizes

(* Two-pass miners vs the level-wise ones: all four produce identical
   output; they differ in passes and candidate volume. *)

let miners config =
  section
    "Miners: Apriori vs DHP vs Partition vs Sampling vs FP-Growth\n\
     (identical outputs; time, passes and candidate counts differ)";
  Printf.printf "%-14s %-10s %-11s %-9s %-12s %-10s\n" "dataset" "miner"
    "time (s)" "passes" "candidates" "frequent";
  List.iter
    (fun ((t, i), minsup_pct) ->
      let name, db = dataset config ~t ~i in
      let minsup = Database.count_of_fraction db (minsup_pct /. 100.0) in
      let expected = ref (-1) in
      List.iter
        (fun (label, run) ->
          let stats = Olar_mining.Stats.create () in
          let frequent, seconds = Olar_util.Timer.time (fun () -> run stats) in
          let total = Olar_mining.Frequent.total frequent in
          if !expected < 0 then expected := total;
          assert (total = !expected);
          Printf.printf "%-14s %-10s %-11.2f %-9d %-12d %-10d\n" name label
            seconds
            (Olar_util.Timer.Counter.value stats.Olar_mining.Stats.passes)
            (Olar_util.Timer.Counter.value stats.Olar_mining.Stats.candidates)
            total)
        [
          ("apriori", fun stats -> Olar_mining.Apriori.mine ~stats db ~minsup);
          ("dhp", fun stats -> Olar_mining.Dhp.mine ~stats db ~minsup);
          ("partition", fun stats -> Olar_mining.Partition.mine ~stats db ~minsup);
          ( "sampling",
            fun stats ->
              (Olar_mining.Sampling.mine ~stats ~seed:config.seed db ~minsup)
                .Olar_mining.Sampling.result );
          ("fpgrowth", fun stats -> Olar_mining.Fpgrowth.mine ~stats db ~minsup);
        ])
    [ ((10, 4), 0.3); ((10, 6), 0.3) ]

(* Ablation: FindSupport's best-first search vs enumerate-everything-
   and-sort. The heap answers top-k touching only slightly more than the
   k strongest vertices; the naive route must materialise the whole
   reachable set. *)
let ablate_bestfirst config =
  section
    "Ablation: FindSupport best-first vs enumerate-and-sort (top-k query)\n\
     (work = vertices + links touched; lattice holds every primary itemset)";
  let e = engine config ~t:10 ~i:4 ~primary:0.002 in
  let lat = Olar_core.Engine.lattice e in
  Printf.printf "lattice: %d itemsets\n" (Olar_core.Lattice.num_vertices lat - 1);
  Printf.printf "%-8s %-18s %-18s %-10s\n" "k" "work (best-first)"
    "work (enumerate)" "saving";
  List.iter
    (fun k ->
      let work = Olar_util.Timer.Counter.create "w" in
      let answer =
        Olar_core.Support_query.find_support ~work lat
          ~containing:Olar_data.Itemset.empty ~k
      in
      assert (List.length answer.Olar_core.Support_query.itemsets = k);
      let best_first = Olar_util.Timer.Counter.value work in
      (* the naive route: touch everything, sort, take k *)
      let work_all = Olar_util.Timer.Counter.create "w" in
      let all =
        Olar_core.Query.find_itemsets ~work:work_all lat
          ~containing:Olar_data.Itemset.empty
          ~minsup:(Olar_core.Lattice.threshold lat)
      in
      ignore (List.filteri (fun i _ -> i < k) all);
      let enumerate = Olar_util.Timer.Counter.value work_all in
      Printf.printf "%-8d %-18d %-18d %8.1f%%\n" k best_first enumerate
        (100.0 *. (1.0 -. (float_of_int best_first /. float_of_int enumerate))))
    [ 10; 100; 1000; 5000 ]

(* Ablation 4: counting structure — prefix trie vs the original Apriori
   hash tree. Same counts by construction; different memory traffic. *)
let ablate_counting config =
  section
    "Ablation: candidate counting, prefix trie vs hash tree\n\
     (level-2 candidates of T10.I4 counted over the whole database)";
  let _, db = dataset config ~t:10 ~i:4 in
  let minsup = Database.count_of_fraction db 0.002 in
  let l1 =
    let freq = Database.item_frequencies db in
    let out = ref [] in
    Array.iteri (fun i c -> if c >= minsup then out := i :: !out) freq;
    Array.of_list (List.sort Int.compare !out)
  in
  let candidates = Olar_mining.Candidate.pairs_of_items l1 in
  Printf.printf "%d frequent items -> %d candidate pairs\n" (Array.length l1)
    (Array.length candidates);
  let time_trie () =
    let trie = Olar_mining.Trie.create ~depth:2 in
    Array.iter (Olar_mining.Trie.insert trie) candidates;
    let _, dt =
      Olar_util.Timer.time (fun () ->
          Database.iter (Olar_mining.Trie.count_transaction trie) db)
    in
    (Olar_mining.Trie.to_sorted_array trie, dt)
  in
  let time_hashtree () =
    let tree = Olar_mining.Hashtree.create ~fanout:128 ~leaf_capacity:32 ~depth:2 () in
    Array.iter (Olar_mining.Hashtree.insert tree) candidates;
    let _, dt =
      Olar_util.Timer.time (fun () ->
          Database.iter (Olar_mining.Hashtree.count_transaction tree) db)
    in
    (Olar_mining.Hashtree.to_sorted_array tree, dt)
  in
  let trie_counts, trie_s = time_trie () in
  let tree_counts, tree_s = time_hashtree () in
  assert (trie_counts = tree_counts);
  Printf.printf "prefix trie: %.3fs   hash tree: %.3fs   (identical counts)\n"
    trie_s tree_s

(* ------------------------------------------------------------------ *)
(* Query throughput: FindItemsets queries/second over a T10.I4-style
   dataset. The scenario that motivates the CSR lattice layout: a long
   interactive session hammering the same preprocessed lattice with
   point and scan queries. Run it before and after a layout change and
   compare the qps columns. *)

let qps_scenarios e lat =
  (* one shared scratch: the steady state of a long-lived session *)
  let scratch = Olar_core.Scratch.create lat in
  (* primary singletons, reused round-robin for the targeted mix *)
  let singles = Olar_util.Vec.create () in
  Olar_core.Lattice.iter_vertices
    (fun v ->
      if Olar_core.Lattice.cardinal lat v = 1 then Olar_util.Vec.push singles v)
    lat;
  let single k =
    Olar_core.Lattice.itemset lat
      (Olar_util.Vec.get singles (k mod Olar_util.Vec.length singles))
  in
  let minsup_of pct = Olar_core.Engine.count_of_support e (pct /. 100.0) in
  (* Each scenario takes an optional work counter: omitted in the
     throughput loop (the None fast path, identical to a bare call),
     supplied in the latency pass so the JSON report carries
     machine-independent work next to the quantiles. *)
  [
    ( "count broad 0.5%",
      fun ?work k ->
        ignore k;
        ignore
          (Olar_core.Query.count_itemsets ?work ~scratch lat
             ~containing:Itemset.empty ~minsup:(minsup_of 0.5)) );
    ( "find broad 0.25%",
      fun ?work k ->
        ignore k;
        ignore
          (Olar_core.Query.find_itemsets ?work ~scratch lat
             ~containing:Itemset.empty ~minsup:(minsup_of 0.25)) );
    ( "find targeted",
      fun ?work k ->
        ignore
          (Olar_core.Query.find_itemsets ?work ~scratch lat
             ~containing:(single k)
             ~minsup:(Olar_core.Lattice.threshold lat)) );
    ( "top-100 support",
      fun ?work k ->
        ignore
          (Olar_core.Support_query.find_support ?work ~scratch lat
             ~containing:(single k) ~k:100) );
  ]

let qps config =
  section
    "Throughput: online queries/second on one preprocessed lattice\n\
     (the hot loop of an interactive mining session; higher is better)";
  let e = engine config ~t:10 ~i:4 ~primary:0.002 in
  let lat = Olar_core.Engine.lattice e in
  Printf.printf "lattice: %d vertices, %d edges, ~%d KiB\n"
    (Olar_core.Lattice.num_vertices lat)
    (Olar_core.Lattice.num_edges lat)
    (Olar_core.Lattice.estimated_bytes lat / 1024);
  Printf.printf "%-20s %-12s %-12s %-14s\n" "scenario" "queries" "seconds" "qps";
  let jscenarios = ref [] in
  List.iter
    (fun (name, (run : ?work:Olar_util.Timer.Counter.t -> int -> unit)) ->
      (* warm up, then measure for a fixed wall budget *)
      for k = 0 to 9 do
        run k
      done;
      let budget = 1.0 in
      let timer = Olar_util.Timer.start () in
      let queries = ref 0 in
      while Olar_util.Timer.elapsed_s timer < budget do
        (* batch between clock reads to keep clock overhead negligible *)
        for k = 0 to 19 do
          run (!queries + k)
        done;
        queries := !queries + 20
      done;
      let dt = Olar_util.Timer.elapsed_s timer in
      Printf.printf "%-20s %-12d %-12.3f %-14.0f\n" name !queries dt
        (float_of_int !queries /. dt);
      (* Separate latency pass: per-query timing into a log-scale
         histogram, with the work counter attached. Kept out of the
         throughput loop above so the clock reads there stay batched. *)
      let hist = Olar_obs.Metrics.Histogram.create "latency" in
      let work = Olar_util.Timer.Counter.create "work" in
      let lat_budget = 0.3 in
      let ltimer = Olar_util.Timer.start () in
      let samples = ref 0 in
      while Olar_util.Timer.elapsed_s ltimer < lat_budget do
        let t0 = Olar_util.Timer.start () in
        run ~work !samples;
        Olar_obs.Metrics.Histogram.observe hist (Olar_util.Timer.elapsed_s t0);
        incr samples
      done;
      let q p = 1e6 *. Olar_obs.Metrics.Histogram.quantile hist p in
      jscenarios :=
        Jsonx.Obj
          [
            ("name", Jsonx.Str name);
            ("queries", Jsonx.Int !queries);
            ("seconds", Jsonx.Float dt);
            ("qps", Jsonx.Float (float_of_int !queries /. dt));
            ( "latency",
              Jsonx.Obj
                [
                  ("samples", Jsonx.Int (Olar_obs.Metrics.Histogram.count hist));
                  ( "mean_us",
                    Jsonx.Float (1e6 *. Olar_obs.Metrics.Histogram.mean hist) );
                  ("p50_us", Jsonx.Float (q 0.5));
                  ("p90_us", Jsonx.Float (q 0.9));
                  ("p99_us", Jsonx.Float (q 0.99));
                ] );
            ( "work",
              Jsonx.Obj
                [
                  ("total", Jsonx.Int (Olar_util.Timer.Counter.value work));
                  ( "per_query",
                    Jsonx.Float
                      (float_of_int (Olar_util.Timer.Counter.value work)
                      /. float_of_int (max 1 !samples)) );
                ] );
          ]
        :: !jscenarios)
    (qps_scenarios e lat);
  record_json "qps"
    (Jsonx.Obj
       [
         ( "lattice",
           Jsonx.Obj
             [
               ("vertices", Jsonx.Int (Olar_core.Lattice.num_vertices lat));
               ("edges", Jsonx.Int (Olar_core.Lattice.num_edges lat));
               ("bytes", Jsonx.Int (Olar_core.Lattice.estimated_bytes lat));
             ] );
         ("scenarios", Jsonx.Arr (List.rev !jscenarios));
       ])

(* ------------------------------------------------------------------ *)
(* Session cache: Zipf-repeated interactive query streams, cached vs
   uncached. An analyst re-issues a handful of favourite (minsup,
   minconf) settings with a skewed repeat distribution; the session
   cache (lib/serve) answers repeats from cached canonical-order
   prefixes instead of re-walking the lattice. Both sides run through
   Olar_serve.Session — budget 0 is the contract-identical
   passthrough — so the comparison isolates the cache itself. *)

let session_bench config =
  section
    "Session cache: Zipf-repeated query streams, cached vs uncached\n\
     (lib/serve; repeats served by prefix refinement, not re-traversal)";
  let e = engine config ~t:10 ~i:4 ~primary:0.002 in
  (* Fixed pre-drawn streams so the cached and uncached runs replay the
     identical query sequence. Setting rank r is drawn with Zipf weight
     1/(r+1): a few favourites dominate, the tail recurs rarely. *)
  let stream_len = 4096 in
  let zipf_stream st settings =
    let n = Array.length settings in
    let cum = Array.make n 0.0 in
    let total = ref 0.0 in
    for r = 0 to n - 1 do
      total := !total +. (1.0 /. float_of_int (r + 1));
      cum.(r) <- !total
    done;
    Array.init stream_len (fun _ ->
        let u = Random.State.float st !total in
        let rec pick r =
          if r = n - 1 || u <= cum.(r) then settings.(r) else pick (r + 1)
        in
        pick 0)
  in
  let rng = Random.State.make [| config.seed; 0x5355 |] in
  let find_stream =
    zipf_stream rng [| 0.004; 0.0025; 0.005; 0.003; 0.0075; 0.01 |]
  in
  let rule_stream =
    zipf_stream rng
      (Array.of_list
         (List.concat_map
            (fun s -> List.map (fun c -> (s, c)) [ 0.9; 0.7; 0.5 ])
            [ 0.0075; 0.005; 0.01 ]))
  in
  let scenarios =
    [
      ( "find broad",
        fun session k ->
          let minsup = find_stream.(k land (stream_len - 1)) in
          ignore (Olar_serve.Session.itemset_ids session ~minsup) );
      ( "rules",
        fun session k ->
          let minsup, minconf = rule_stream.(k land (stream_len - 1)) in
          ignore (Olar_serve.Session.essential_rules session ~minsup ~minconf)
      );
    ]
  in
  (* Same measurement discipline as the qps experiment: warm up, then a
     fixed wall budget with clock reads batched every 20 queries. *)
  let measure session run =
    for k = 0 to 9 do
      run session k
    done;
    let budget = 1.0 in
    let timer = Olar_util.Timer.start () in
    let queries = ref 0 in
    while Olar_util.Timer.elapsed_s timer < budget do
      for k = 0 to 19 do
        run session (!queries + k)
      done;
      queries := !queries + 20
    done;
    let dt = Olar_util.Timer.elapsed_s timer in
    (!queries, dt, float_of_int !queries /. dt)
  in
  Printf.printf "%-12s %-14s %-14s %-10s %-24s\n" "scenario" "uncached qps"
    "cached qps" "speedup" "cache hit/refine/miss";
  let jscenarios = ref [] in
  List.iter
    (fun (name, run) ->
      let uncached = Olar_serve.Session.create ~budget_bytes:0 e in
      let ((_, _, uq) as u) = measure uncached run in
      let cached =
        Olar_serve.Session.create ~budget_bytes:(32 * 1024 * 1024) e
      in
      let ((_, _, cq) as c) = measure cached run in
      let s = Olar_serve.Session.stats cached in
      let open Olar_serve.Session in
      Printf.printf "%-12s %-14.0f %-14.0f %8.1fx  %d/%d/%d\n" name uq cq
        (cq /. uq) s.hits s.refines s.misses;
      let side (queries, seconds, qps) =
        Jsonx.Obj
          [
            ("queries", Jsonx.Int queries);
            ("seconds", Jsonx.Float seconds);
            ("qps", Jsonx.Float qps);
          ]
      in
      jscenarios :=
        Jsonx.Obj
          [
            ("name", Jsonx.Str name);
            ("uncached", side u);
            ("cached", side c);
            ("speedup", Jsonx.Float (cq /. uq));
            ( "cache",
              Jsonx.Obj
                [
                  ("hits", Jsonx.Int s.hits);
                  ("misses", Jsonx.Int s.misses);
                  ("refines", Jsonx.Int s.refines);
                  ("evictions", Jsonx.Int s.evictions);
                  ("resident_bytes", Jsonx.Int s.resident_bytes);
                ] );
          ]
        :: !jscenarios)
    scenarios;
  record_json "session"
    (Jsonx.Obj [ ("scenarios", Jsonx.Arr (List.rev !jscenarios)) ])

(* ------------------------------------------------------------------ *)
(* Concurrent serving: the same queries fanned across a Pool of 1, 2,
   4 and 8 domains sharing one immutable lattice, each domain with a
   private scratch/session. Aggregate throughput plus per-request p99
   from the pool's own service-latency clock. Caches are off (budget
   0) so the scaling measured is raw query execution, not hit rate.
   Speedup is bounded by physical cores — on a 1-core container every
   domain count measures the same serialized throughput minus
   scheduling overhead. *)

let concurrent config =
  section
    "Concurrent serving: aggregate qps + p99 across a domain pool\n\
     (one shared CSR lattice, per-domain scratch/session; lib/serve Pool)";
  let e = engine config ~t:10 ~i:4 ~primary:0.002 in
  let lat = Olar_core.Engine.lattice e in
  let singles = Olar_util.Vec.create () in
  Olar_core.Lattice.iter_vertices
    (fun v ->
      if Olar_core.Lattice.cardinal lat v = 1 then Olar_util.Vec.push singles v)
    lat;
  let single k =
    Olar_core.Lattice.itemset lat
      (Olar_util.Vec.get singles (k mod Olar_util.Vec.length singles))
  in
  let batch_len = 64 in
  let find_broad =
    Array.init batch_len (fun _ ->
        Olar_serve.Pool.Find_itemsets
          { containing = Itemset.empty; minsup = 0.0025 })
  in
  let mixed =
    Array.init batch_len (fun k ->
        match k mod 4 with
        | 0 ->
          Olar_serve.Pool.Find_itemsets
            { containing = single k; minsup = 0.002 }
        | 1 ->
          Olar_serve.Pool.Count_itemsets
            { containing = Itemset.empty; minsup = 0.005 }
        | 2 ->
          Olar_serve.Pool.Single_consequent_rules
            { containing = Itemset.empty; minsup = 0.0075; minconf = 0.5 }
        | _ ->
          Olar_serve.Pool.Support_for_k_itemsets
            { containing = single k; k = 100 })
  in
  let measure pool batch =
    ignore (Olar_serve.Pool.run pool batch);
    let hist = Olar_obs.Metrics.Histogram.create "service_latency" in
    let budget = 1.0 in
    let timer = Olar_util.Timer.start () in
    let queries = ref 0 in
    while Olar_util.Timer.elapsed_s timer < budget do
      let out = Olar_serve.Pool.run_timed pool batch in
      Array.iter
        (fun (_, l) -> Olar_obs.Metrics.Histogram.observe hist l)
        out;
      queries := !queries + Array.length batch
    done;
    let dt = Olar_util.Timer.elapsed_s timer in
    (!queries, dt, hist)
  in
  Printf.printf "%-18s %-8s %-10s %-12s %-10s %-10s %-8s\n" "scenario" "domains"
    "queries" "qps" "p99 us" "mean us" "vs 1";
  let jscenarios = ref [] in
  List.iter
    (fun (name, batch) ->
      let base = ref 0.0 in
      let jpoints = ref [] in
      List.iter
        (fun d ->
          let queries, dt, hist =
            Olar_serve.Pool.with_pool ~domains:d ~budget_bytes:0 e (fun pool ->
                measure pool batch)
          in
          let qps = float_of_int queries /. dt in
          if d = 1 then base := qps;
          let q p = 1e6 *. Olar_obs.Metrics.Histogram.quantile hist p in
          Printf.printf "%-18s %-8d %-10d %-12.0f %-10.0f %-10.1f %6.2fx\n"
            name d queries qps (q 0.99)
            (1e6 *. Olar_obs.Metrics.Histogram.mean hist)
            (qps /. !base);
          jpoints :=
            Jsonx.Obj
              [
                ("domains", Jsonx.Int d);
                ("queries", Jsonx.Int queries);
                ("seconds", Jsonx.Float dt);
                ("qps", Jsonx.Float qps);
                ("speedup_vs_1", Jsonx.Float (qps /. !base));
                ( "latency",
                  Jsonx.Obj
                    [
                      ( "samples",
                        Jsonx.Int (Olar_obs.Metrics.Histogram.count hist) );
                      ( "mean_us",
                        Jsonx.Float
                          (1e6 *. Olar_obs.Metrics.Histogram.mean hist) );
                      ("p50_us", Jsonx.Float (q 0.5));
                      ("p90_us", Jsonx.Float (q 0.9));
                      ("p99_us", Jsonx.Float (q 0.99));
                    ] );
              ]
            :: !jpoints)
        [ 1; 2; 4; 8 ];
      jscenarios :=
        Jsonx.Obj
          [
            ("name", Jsonx.Str name);
            ("batch", Jsonx.Int batch_len);
            ("points", Jsonx.Arr (List.rev !jpoints));
          ]
        :: !jscenarios)
    [ ("find broad 0.25%", find_broad); ("mixed", mixed) ];
  record_json "concurrent"
    (Jsonx.Obj
       [
         ( "recommended_domains",
           Jsonx.Int (Domain.recommended_domain_count ()) );
         ("scenarios", Jsonx.Arr (List.rev !jscenarios));
       ])

(* ------------------------------------------------------------------ *)
(* Append latency: read service under a live append stream. The old
   pool quiesced on every append — a fold stalled every in-flight
   reader behind a barrier. Snapshot publication folds the delta off
   to the side and swaps a pointer, so a read's wall-clock latency
   (submit to completion) should stay put while appends stream
   through. Two phases over the same closed loop of raw [Pool.submit]
   reads with no drains: a baseline without appends, then the same
   loop with a small Append folded after every [append_every] reads.
   compare_json holds both phases' read p99 against the recorded
   BENCH_T10I4.json values. *)

let append_bench config =
  section
    "Append latency: read p99 under a live append stream\n\
     (RCU snapshot publication; raw Pool.submit, no drains)";
  let e = engine config ~t:10 ~i:4 ~primary:0.002 in
  let _, db = dataset config ~t:10 ~i:4 in
  let lat = Olar_core.Engine.lattice e in
  let singles = Olar_util.Vec.create () in
  Olar_core.Lattice.iter_vertices
    (fun v ->
      if Olar_core.Lattice.cardinal lat v = 1 then Olar_util.Vec.push singles v)
    lat;
  let single k =
    Olar_core.Lattice.itemset lat
      (Olar_util.Vec.get singles (k mod Olar_util.Vec.length singles))
  in
  let read k =
    match k mod 4 with
    | 0 ->
      Olar_serve.Pool.Find_itemsets { containing = single k; minsup = 0.002 }
    | 1 ->
      Olar_serve.Pool.Count_itemsets
        { containing = Itemset.empty; minsup = 0.005 }
    | 2 ->
      Olar_serve.Pool.Single_consequent_rules
        { containing = Itemset.empty; minsup = 0.0075; minconf = 0.5 }
    | _ ->
      Olar_serve.Pool.Support_for_k_itemsets { containing = single k; k = 100 }
  in
  let rng = Random.State.make [| config.seed; 0xa99e |] in
  let delta () =
    let rows =
      List.init 5 (fun _ -> Itemset.to_list (single (Random.State.int rng 4096)))
    in
    Database.of_lists ~num_items:(Database.num_items db) rows
  in
  let domains = max 1 (min 4 (Domain.recommended_domain_count ())) in
  let append_every = 500 in
  let cap = 1 lsl 18 in
  (* One phase. Wall-clock latency per read is captured from submit in
     the callback's closure; callbacks run on whichever domain executed
     the request, so each writes its own pre-assigned slot and the
     histogram is folded after the drain. *)
  let phase ~with_appends pool =
    let lats = Array.make cap 0.0 in
    let budget = 1.0 in
    let timer = Olar_util.Timer.start () in
    let submitted = ref 0 in
    let appends = ref 0 in
    let promoted = ref 0 in
    while Olar_util.Timer.elapsed_s timer < budget && !submitted < cap do
      let idx = !submitted in
      let t0 = Olar_util.Timer.elapsed_s timer in
      Olar_serve.Pool.submit pool (read idx) (fun _ _ ->
          lats.(idx) <- Olar_util.Timer.elapsed_s timer -. t0);
      incr submitted;
      if with_appends && !submitted mod append_every = 0 then begin
        incr appends;
        (* folds inline on the coordinator; reads already submitted
           keep executing on the old snapshot meanwhile *)
        Olar_serve.Pool.submit pool
          (Olar_serve.Pool.Append (delta ()))
          (fun resp _ ->
            match resp with
            | Olar_serve.Pool.R_promoted _ -> incr promoted
            | _ -> ())
      end
    done;
    Olar_serve.Pool.drain pool;
    let dt = Olar_util.Timer.elapsed_s timer in
    let hist = Olar_obs.Metrics.Histogram.create "read_latency" in
    for i = 0 to !submitted - 1 do
      Olar_obs.Metrics.Histogram.observe hist lats.(i)
    done;
    (!submitted, dt, hist, !appends, !promoted)
  in
  let run_phase ~with_appends =
    Olar_serve.Pool.with_pool ~domains ~budget_bytes:0 e (fun pool ->
        let r = phase ~with_appends pool in
        let gen = Olar_serve.Pool.generation pool in
        (r, gen))
  in
  let (bq, bdt, bh, _, _), _ = run_phase ~with_appends:false in
  let (dq, ddt, dh, da, dp), dgen = run_phase ~with_appends:true in
  let q hist p = 1e6 *. Olar_obs.Metrics.Histogram.quantile hist p in
  let bp99 = q bh 0.99 and dp99 = q dh 0.99 in
  let ratio = if bp99 > 0.0 then dp99 /. bp99 else 0.0 in
  Printf.printf "%-22s %-10s %-12s %-10s %-10s %-9s\n" "phase" "reads" "qps"
    "p50 us" "p99 us" "appends";
  Printf.printf "%-22s %-10d %-12.0f %-10.1f %-10.1f %-9s\n" "baseline" bq
    (float_of_int bq /. bdt)
    (q bh 0.5) bp99 "-";
  Printf.printf "%-22s %-10d %-12.0f %-10.1f %-10.1f %d (%d ok)\n"
    "during appends" dq
    (float_of_int dq /. ddt)
    (q dh 0.5) dp99 da dp;
  Printf.printf "read p99 during appends / baseline: %.2fx (%d generations)\n"
    ratio dgen;
  let side (queries, dt, hist, _, _) =
    Jsonx.Obj
      [
        ("queries", Jsonx.Int queries);
        ("seconds", Jsonx.Float dt);
        ("qps", Jsonx.Float (float_of_int queries /. dt));
        ( "latency",
          Jsonx.Obj
            [
              ("samples", Jsonx.Int (Olar_obs.Metrics.Histogram.count hist));
              ("mean_us", Jsonx.Float (1e6 *. Olar_obs.Metrics.Histogram.mean hist));
              ("p50_us", Jsonx.Float (q hist 0.5));
              ("p90_us", Jsonx.Float (q hist 0.9));
              ("p99_us", Jsonx.Float (q hist 0.99));
            ] );
      ]
  in
  record_json "append"
    (Jsonx.Obj
       [
         ("domains", Jsonx.Int domains);
         ("append_every", Jsonx.Int append_every);
         ("baseline", side (bq, bdt, bh, 0, 0));
         ("during", side (dq, ddt, dh, da, dp));
         ("appends", Jsonx.Int da);
         ("promoted", Jsonx.Int dp);
         ("generations", Jsonx.Int dgen);
         ("p99_ratio", Jsonx.Float ratio);
       ])

(* ------------------------------------------------------------------ *)
(* Network serving: closed-loop loopback HTTP clients against an
   in-process olar serve (lib/net). Where the concurrent experiment
   measures raw pool rounds, this one measures the whole wire path —
   socket, HTTP parse, admission queue, coalesced pool round, JSON
   response — which is what a deployment actually observes. Clients
   draw query bodies from Zipf-skewed streams (an analyst's favourite
   settings dominating); sheds (429/503) are counted in the report but
   not expected at these loads. *)

(* One blocking request/response turn on a persistent connection. *)
let serve_client_post fd buf off body =
  let s = Olar_net.Http.render_request ~meth:"POST" ~target:"/query" body in
  let sb = Bytes.unsafe_of_string s in
  let rec wr o =
    if o < String.length s then
      wr (o + Unix.write fd sb o (String.length s - o))
  in
  wr 0;
  let chunk = Bytes.create 8192 in
  let rec rd () =
    match Olar_net.Http.parse_response (Buffer.contents buf) ~off:!off with
    | Olar_net.Http.Complete (resp, used) ->
      off := !off + used;
      if !off = Buffer.length buf then begin
        Buffer.clear buf;
        off := 0
      end;
      resp.Olar_net.Http.status
    | Olar_net.Http.Failed _ -> failwith "serve bench: malformed response"
    | Olar_net.Http.Incomplete -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> failwith "serve bench: connection closed"
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        rd ())
  in
  rd ()

(* One blocking GET on a fresh connection; returns the response body. *)
let serve_client_get port target =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let s = Olar_net.Http.render_request ~meth:"GET" ~target "" in
  let sb = Bytes.unsafe_of_string s in
  let rec wr o =
    if o < String.length s then
      wr (o + Unix.write fd sb o (String.length s - o))
  in
  wr 0;
  let buf = Buffer.create 8192 in
  let chunk = Bytes.create 8192 in
  let rec rd () =
    match Olar_net.Http.parse_response (Buffer.contents buf) ~off:0 with
    | Olar_net.Http.Complete (resp, _) -> resp.Olar_net.Http.resp_body
    | Olar_net.Http.Failed _ -> failwith "serve bench: malformed response"
    | Olar_net.Http.Incomplete -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> failwith "serve bench: connection closed"
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        rd ())
  in
  let body = rd () in
  (try Unix.close fd with _ -> ());
  body

let serve_bench config =
  section
    "Network serving: loopback HTTP clients against olar serve\n\
     (end-to-end wire qps: socket + HTTP + admission queue + pool)";
  (* an obs context so the server starts its eventring consumer: the
     emitted JSON then carries the gc section next to the windows *)
  let e =
    Olar_core.Engine.with_obs
      (engine config ~t:10 ~i:4 ~primary:0.002)
      (Olar_obs.Obs.create ())
  in
  let lat = Olar_core.Engine.lattice e in
  let singles = Olar_util.Vec.create () in
  Olar_core.Lattice.iter_vertices
    (fun v ->
      if Olar_core.Lattice.cardinal lat v = 1 then Olar_util.Vec.push singles v)
    lat;
  let single_json k =
    let x =
      Olar_core.Lattice.itemset lat
        (Olar_util.Vec.get singles (k mod Olar_util.Vec.length singles))
    in
    "[" ^ String.concat "," (List.map string_of_int (Itemset.to_list x)) ^ "]"
  in
  (* pre-drawn body streams, Zipf weight 1/(r+1) over setting ranks as
     in the session experiment *)
  let stream_len = 1024 in
  let zipf_bodies st make n_settings =
    let cum = Array.make n_settings 0.0 in
    let total = ref 0.0 in
    for r = 0 to n_settings - 1 do
      total := !total +. (1.0 /. float_of_int (r + 1));
      cum.(r) <- !total
    done;
    Array.init stream_len (fun i ->
        let u = Random.State.float st !total in
        let rec pick r =
          if r = n_settings - 1 || u <= cum.(r) then r else pick (r + 1)
        in
        make (pick 0) i)
  in
  let rng = Random.State.make [| config.seed; 0x53e7 |] in
  let counts = [| 0.004; 0.0025; 0.005; 0.003; 0.0075; 0.01 |] in
  let count_bodies =
    zipf_bodies rng
      (fun r _ -> Printf.sprintf {|{"kind":"count","minsup":%g}|} counts.(r))
      (Array.length counts)
  in
  let mixed_bodies =
    zipf_bodies rng
      (fun r i ->
        match r mod 4 with
        | 0 ->
          Printf.sprintf {|{"kind":"find","containing":%s,"minsup":0.002}|}
            (single_json i)
        | 1 -> {|{"kind":"count","minsup":0.005}|}
        | 2 ->
          {|{"kind":"single_consequent_rules","minsup":0.0075,"minconf":0.5}|}
        | _ ->
          Printf.sprintf
            {|{"kind":"support_for_k_itemsets","containing":%s,"k":100}|}
            (single_json i))
      8
  in
  let server_cfg =
    { Olar_net.Server.default_config with Olar_net.Server.port = 0 }
  in
  let run_point bodies clients =
    Olar_net.Server.with_server ~config:server_cfg ?domains:config.domains
      ~budget_bytes:0 e (fun srv ->
        let port = Olar_net.Server.port srv in
        let hist = Olar_obs.Metrics.Histogram.create "wire_latency" in
        let served = Atomic.make 0 and shed = Atomic.make 0 in
        let stop = Atomic.make false in
        let worker ci () =
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
          let buf = Buffer.create 8192 in
          let off = ref 0 in
          let k = ref ci in
          while not (Atomic.get stop) do
            let body = bodies.(!k land (stream_len - 1)) in
            k := !k + clients;
            let t0 = Olar_util.Timer.start () in
            let status = serve_client_post fd buf off body in
            Olar_obs.Metrics.Histogram.observe hist
              (Olar_util.Timer.elapsed_s t0);
            match status with
            | 200 -> Atomic.incr served
            | 429 | 503 -> Atomic.incr shed
            | s -> failwith (Printf.sprintf "serve bench: status %d" s)
          done;
          try Unix.close fd with _ -> ()
        in
        let budget = 1.0 in
        let timer = Olar_util.Timer.start () in
        let threads =
          List.init clients (fun ci -> Thread.create (worker ci) ())
        in
        Thread.delay budget;
        Atomic.set stop true;
        List.iter Thread.join threads;
        let dt = Olar_util.Timer.elapsed_s timer in
        (* scrape the per-phase latency attribution for this point from
           /statusz (a Jsonx view of olar_http_phase_seconds). The
           write phase is observed by a post-send hook that can lag the
           client's receive by a beat, so retry briefly until the write
           count has caught up with everything the clients saw served. *)
        let statusz =
          let rec scrape attempts =
            let json =
              match Jsonx.of_string (serve_client_get port "/statusz") with
              | Ok json -> json
              | Error e -> failwith ("serve bench: statusz not JSON: " ^ e)
            in
            let write_count =
              match
                Option.bind
                  (Jsonx.path [ "phases"; "write"; "count" ] json)
                  Jsonx.number
              with
              | Some c -> int_of_float c
              | None -> failwith "serve bench: statusz lacks write phase"
            in
            if write_count >= Atomic.get served || attempts >= 50 then json
            else begin
              Thread.delay 0.01;
              scrape (attempts + 1)
            end
          in
          scrape 0
        in
        let statusz_section what =
          match Jsonx.member what statusz with
          | Some v -> v
          | None -> failwith ("serve bench: statusz lacks " ^ what)
        in
        ( Olar_serve.Pool.domains (Olar_net.Server.pool srv),
          Atomic.get served,
          Atomic.get shed,
          dt,
          hist,
          ( statusz_section "phases",
            statusz_section "window",
            statusz_section "gc" ) ))
  in
  Printf.printf "%-14s %-8s %-10s %-12s %-6s %-10s %-10s\n" "scenario"
    "clients" "served" "qps" "shed" "p50 us" "p99 us";
  let jscenarios = ref [] in
  let domains_seen = ref 1 in
  List.iter
    (fun (name, bodies) ->
      List.iter
        (fun clients ->
          let domains, served, shed, dt, hist, (phases, window, gc) =
            run_point bodies clients
          in
          domains_seen := domains;
          let qps = float_of_int served /. dt in
          let q p = 1e6 *. Olar_obs.Metrics.Histogram.quantile hist p in
          Printf.printf "%-14s %-8d %-10d %-12.0f %-6d %-10.0f %-10.0f\n" name
            clients served qps shed (q 0.5) (q 0.99);
          jscenarios :=
            Jsonx.Obj
              [
                ("name", Jsonx.Str name);
                ("clients", Jsonx.Int clients);
                ("queries", Jsonx.Int served);
                ("seconds", Jsonx.Float dt);
                ("qps", Jsonx.Float qps);
                ("shed", Jsonx.Int shed);
                ( "latency",
                  Jsonx.Obj
                    [
                      ( "samples",
                        Jsonx.Int (Olar_obs.Metrics.Histogram.count hist) );
                      ( "mean_us",
                        Jsonx.Float
                          (1e6 *. Olar_obs.Metrics.Histogram.mean hist) );
                      ("p50_us", Jsonx.Float (q 0.5));
                      ("p90_us", Jsonx.Float (q 0.9));
                      ("p99_us", Jsonx.Float (q 0.99));
                    ] );
                ("phases", phases);
                ("window", window);
                ("gc", gc);
              ]
            :: !jscenarios)
        [ 1; 4 ])
    [ ("count broad", count_bodies); ("mixed", mixed_bodies) ];
  record_json "serve"
    (Jsonx.Obj
       [
         ("domains", Jsonx.Int !domains_seen);
         ("scenarios", Jsonx.Arr (List.rev !jscenarios));
       ])

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core operations. *)

let micro config =
  section "Micro-benchmarks (Bechamel, ns per call via OLS on run count)";
  let e = engine config ~t:10 ~i:4 ~primary:0.002 in
  let lat = Olar_core.Engine.lattice e in
  let probe =
    (* a primary 2-itemset to use as a lookup/search target *)
    let found = ref Itemset.empty in
    Olar_core.Lattice.iter_vertices
      (fun v ->
        if Itemset.is_empty !found && Olar_core.Lattice.cardinal lat v = 2 then
          found := Olar_core.Lattice.itemset lat v)
      lat;
    !found
  in
  let deep =
    (* the highest-support vertex of maximal cardinality: boundary target *)
    let best = ref (Olar_core.Lattice.root lat) in
    Olar_core.Lattice.iter_vertices
      (fun v ->
        if
          Olar_core.Lattice.cardinal lat v > Olar_core.Lattice.cardinal lat !best
          || Olar_core.Lattice.cardinal lat v = Olar_core.Lattice.cardinal lat !best
             && Olar_core.Lattice.support lat v > Olar_core.Lattice.support lat !best
        then best := v)
      lat;
    !best
  in
  let x = Itemset.of_list [ 3; 14; 26; 159; 535 ]
  and y = Itemset.of_list [ 3; 14; 159; 265; 358 ] in
  let minsup_broad = Olar_core.Engine.count_of_support e 0.002 in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"itemset.union" (Staged.stage (fun () -> Itemset.union x y));
      Test.make ~name:"itemset.subset" (Staged.stage (fun () -> Itemset.subset x y));
      Test.make ~name:"itemset.hash" (Staged.stage (fun () -> Itemset.hash x));
      Test.make ~name:"lattice.find"
        (Staged.stage (fun () -> Olar_core.Lattice.find lat probe));
      Test.make ~name:"query.find_itemsets(broad)"
        (Staged.stage (fun () ->
             Olar_core.Query.count_itemsets lat ~containing:Itemset.empty
               ~minsup:minsup_broad));
      Test.make ~name:"query.find_itemsets(targeted)"
        (Staged.stage (fun () ->
             Olar_core.Query.count_itemsets lat ~containing:probe
               ~minsup:(Olar_core.Lattice.threshold lat)));
      Test.make ~name:"boundary.find_boundary"
        (Staged.stage (fun () ->
             Olar_core.Boundary.find_boundary lat ~target:deep
               ~confidence:(Olar_core.Conf.of_float 0.7)));
      Test.make ~name:"support_query.top10"
        (Staged.stage (fun () ->
             Olar_core.Support_query.find_support lat ~containing:Itemset.empty
               ~k:10));
      Test.make ~name:"rulegen.essential(broad)"
        (Staged.stage (fun () ->
             Olar_core.Rulegen.essential_rules lat ~minsup:minsup_broad
               ~confidence:(Olar_core.Conf.of_float 0.7)));
    ]
  in
  let benchmark test =
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
    let raw = Benchmark.all cfg [ instance ] test in
    let ols =
      Analyze.all
        (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
        instance raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ ns ] -> Printf.printf "  %-32s %14.1f ns/call\n" name ns
        | _ -> Printf.printf "  %-32s (no estimate)\n" name)
      ols
  in
  List.iter benchmark tests

(* ------------------------------------------------------------------ *)
(* Driver *)

let all_experiments =
  [
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("table3", table3);
    ("fig11", fig11); ("fig12", fig12); ("scaling", scaling); ("qps", qps);
    ("session", session_bench); ("concurrent", concurrent);
    ("append", append_bench);
    ("serve", serve_bench); ("miners", miners);
    ("ablate-sort", ablate_sort);
    ("ablate-cache", ablate_cache); ("ablate-miner", ablate_miner);
    ("ablate-counting", ablate_counting); ("ablate-bestfirst", ablate_bestfirst);
    ("micro", micro);
  ]

let usage () =
  Printf.printf
    "usage: main.exe [--full] [--seed N] [--domains N] [--experiment a,b,...] \
     [--json PATH]\n";
  Printf.printf "experiments: %s, all\n"
    (String.concat ", " (List.map fst all_experiments));
  exit 1

let () =
  let config = ref default_config in
  let chosen = ref [] in
  let seed = ref None in
  let domains = ref None in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
      config := full_config;
      parse rest
    | "--seed" :: n :: rest ->
      (match int_of_string_opt n with Some n -> seed := Some n | None -> usage ());
      parse rest
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> domains := Some n
      | _ -> usage ());
      parse rest
    | "--experiment" :: names :: rest ->
      chosen := !chosen @ String.split_on_char ',' names;
      parse rest
    | "--json" :: path :: rest ->
      json_path := Some path;
      parse rest
    | "--help" :: _ -> usage ()
    | arg :: _ ->
      Printf.printf "unknown argument %S\n" arg;
      usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let config =
    match !seed with None -> !config | Some s -> { !config with seed = s }
  in
  let config =
    match !domains with None -> config | Some d -> { config with domains = Some d }
  in
  let selected =
    match !chosen with
    | [] | [ "all" ] -> all_experiments
    | names ->
      List.map
        (fun name ->
          match List.assoc_opt name all_experiments with
          | Some f -> (name, f)
          | None ->
            Printf.printf "unknown experiment %S\n" name;
            usage ())
        names
  in
  Printf.printf "olar experiment harness: scale %s (%d transactions, %d items)\n"
    (if config.full then "FULL (paper)" else "default (use --full for paper scale)")
    config.transactions config.num_items;
  let total = Olar_util.Timer.start () in
  List.iter (fun (_, f) -> f config) selected;
  Printf.printf "\ntotal: %.1fs\n" (Olar_util.Timer.elapsed_s total);
  match !json_path with
  | None -> ()
  | Some path ->
    let doc =
      Jsonx.Obj
        [
          ("schema_version", Jsonx.Int 1);
          ("scale", Jsonx.Str (if config.full then "full" else "default"));
          ("transactions", Jsonx.Int config.transactions);
          ("num_items", Jsonx.Int config.num_items);
          ("seed", Jsonx.Int config.seed);
          ("experiments", Jsonx.Obj (List.rev !json_experiments));
        ]
    in
    let oc = open_out path in
    output_string oc (Jsonx.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "[json] wrote %s\n" path
