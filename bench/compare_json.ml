(* Perf-regression gate over two bench JSON documents.

   Usage: compare_json.exe OLD.json NEW.json [--tolerance PCT]

   Pairs up every qps series the two documents share — the qps
   experiment's scenarios, the cached/uncached sides of each session
   scenario, each (scenario, domain count) point of the concurrent
   experiment and each (scenario, client count) point of the serve
   experiment — and fails (exit 1) when NEW is slower than OLD by more
   than the tolerance (default 20%). A series present in OLD but absent
   from NEW is also a failure: silently dropping a benchmark must not
   pass the gate. Latency percentiles are reported for context but not
   gated; qps over a fixed wall-clock window is the stabler signal. *)

module Jsonx = Olar_obs.Jsonx

let die fmt = Format.kasprintf (fun s -> prerr_endline ("compare_json: " ^ s); exit 2) fmt

let read_doc path =
  let ic = try open_in_bin path with Sys_error e -> die "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Jsonx.of_string s with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

(* Flatten a bench document into (label, qps) pairs in document order. *)
let series doc =
  let num path v =
    Option.bind (Jsonx.path path v) Jsonx.number
  in
  let name v =
    match Option.bind (Jsonx.member "name" v) Jsonx.to_str with
    | Some s -> s
    | None -> die "scenario without a name field"
  in
  let qps_scenarios =
    match Jsonx.path [ "experiments"; "qps"; "scenarios" ] doc with
    | None -> []
    | Some v -> (
      match Jsonx.to_list v with
      | None -> die "experiments.qps.scenarios is not an array"
      | Some l ->
        List.map
          (fun s ->
            match num [ "qps" ] s with
            | Some q -> ("qps/" ^ name s, q)
            | None -> die "scenario %S has no qps" (name s))
          l)
  in
  let session_scenarios =
    match Jsonx.path [ "experiments"; "session"; "scenarios" ] doc with
    | None -> []
    | Some v -> (
      match Jsonx.to_list v with
      | None -> die "experiments.session.scenarios is not an array"
      | Some l ->
        List.concat_map
          (fun s ->
            let side key =
              match num [ key; "qps" ] s with
              | Some q -> [ (Printf.sprintf "session/%s/%s" (name s) key, q) ]
              | None -> []
            in
            side "uncached" @ side "cached")
          l)
  in
  let concurrent_scenarios =
    match Jsonx.path [ "experiments"; "concurrent"; "scenarios" ] doc with
    | None -> []
    | Some v -> (
      match Jsonx.to_list v with
      | None -> die "experiments.concurrent.scenarios is not an array"
      | Some l ->
        List.concat_map
          (fun s ->
            let points =
              match Option.bind (Jsonx.member "points" s) Jsonx.to_list with
              | Some ps -> ps
              | None -> die "concurrent scenario %S has no points" (name s)
            in
            List.map
              (fun p ->
                match (num [ "domains" ] p, num [ "qps" ] p) with
                | Some d, Some q ->
                  ( Printf.sprintf "concurrent/%s/d%d" (name s)
                      (int_of_float d),
                    q )
                | _ -> die "concurrent point in %S lacks domains/qps" (name s))
              points)
          l)
  in
  let serve_scenarios =
    match Jsonx.path [ "experiments"; "serve"; "scenarios" ] doc with
    | None -> []
    | Some v -> (
      match Jsonx.to_list v with
      | None -> die "experiments.serve.scenarios is not an array"
      | Some l ->
        List.map
          (fun s ->
            match (num [ "clients" ] s, num [ "qps" ] s) with
            | Some c, Some q ->
              (Printf.sprintf "serve/%s/c%d" (name s) (int_of_float c), q)
            | _ -> die "serve scenario %S lacks clients/qps" (name s))
          l)
  in
  qps_scenarios @ session_scenarios @ concurrent_scenarios @ serve_scenarios

let () =
  let old_path = ref None and new_path = ref None and tolerance = ref 20.0 in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> tolerance := t
      | _ -> die "--tolerance expects a non-negative percentage, got %S" v);
      parse rest
    | "--tolerance" :: [] -> die "--tolerance expects a value"
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      die "unknown option %S" arg
    | path :: rest ->
      (match (!old_path, !new_path) with
      | None, _ -> old_path := Some path
      | Some _, None -> new_path := Some path
      | Some _, Some _ -> die "too many arguments: %S" path);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match (!old_path, !new_path) with
    | Some o, Some n -> (o, n)
    | _ -> die "usage: compare_json OLD.json NEW.json [--tolerance PCT]"
  in
  let old_series = series (read_doc old_path)
  and new_series = series (read_doc new_path) in
  let floor = 1.0 -. (!tolerance /. 100.0) in
  let regressions = ref [] in
  Printf.printf "%-34s %12s %12s %9s\n" "series" "old qps" "new qps" "delta";
  List.iter
    (fun (label, old_qps) ->
      match List.assoc_opt label new_series with
      | None ->
        Printf.printf "%-34s %12.1f %12s %9s\n" label old_qps "missing" "-";
        regressions := Printf.sprintf "%s: missing from %s" label new_path :: !regressions
      | Some new_qps ->
        let delta = 100.0 *. ((new_qps /. old_qps) -. 1.0) in
        Printf.printf "%-34s %12.1f %12.1f %+8.1f%%\n" label old_qps new_qps delta;
        if new_qps < old_qps *. floor then
          regressions :=
            Printf.sprintf "%s: %.1f -> %.1f qps (%+.1f%%, tolerance -%.0f%%)"
              label old_qps new_qps delta !tolerance
            :: !regressions)
    old_series;
  List.iter
    (fun (label, _) ->
      if not (List.mem_assoc label old_series) then
        Printf.printf "%-34s %12s (new series, not gated)\n" label "-")
    new_series;
  match List.rev !regressions with
  | [] ->
    Printf.printf "OK: %d series within -%.0f%% tolerance\n"
      (List.length old_series) !tolerance
  | rs ->
    List.iter (fun r -> prerr_endline ("REGRESSION " ^ r)) rs;
    exit 1
