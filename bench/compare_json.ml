(* Perf-regression gate over two bench JSON documents.

   Usage: compare_json.exe OLD.json NEW.json [--tolerance PCT]

   Pairs up every qps series the two documents share — the qps
   experiment's scenarios, the cached/uncached sides of each session
   scenario, each (scenario, domain count) point of the concurrent
   experiment, each (scenario, client count) point of the serve
   experiment and the append experiment's baseline read phase — and
   fails (exit 1) when NEW is slower than OLD by more
   than the tolerance (default 20%). A series present in OLD but absent
   from NEW is also a failure: silently dropping a benchmark must not
   pass the gate. End-to-end latency percentiles are reported for
   context but not gated; qps over a fixed wall-clock window is the
   stabler signal.

   The serve experiment's per-phase p99s (the /statusz attribution)
   and the append experiment's read p99s (baseline and during a live
   append stream) ARE gated, in the opposite direction — NEW must not
   be slower — under their own much looser --phase-tolerance (default
   400%) plus a 500us absolute slack, because microsecond-scale phases are noisy
   where whole-window qps is not. The gate exists to catch a phase
   blowing up by an order of magnitude (a queue suddenly dominating, a
   write path gone quadratic), not to litigate scheduler jitter.

   The dispatch microbench's (mode, domains) points gate per-point as
   [dispatch/<mode>/d<N>] under their own --dispatch-tolerance
   (default 90%): pure scheduling throughput on a loaded machine
   swings severalfold run to run, so the gate is sized to catch a
   collapsed scheduler (an order of magnitude, a deadlock degraded to
   timeout pacing), not timeslice luck. A dispatch series present in
   OLD and missing from NEW still fails. *)

module Jsonx = Olar_obs.Jsonx

let die fmt = Format.kasprintf (fun s -> prerr_endline ("compare_json: " ^ s); exit 2) fmt

let read_doc path =
  let ic = try open_in_bin path with Sys_error e -> die "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Jsonx.of_string s with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

(* Flatten a bench document into (label, qps) pairs in document order. *)
let series doc =
  let num path v =
    Option.bind (Jsonx.path path v) Jsonx.number
  in
  let name v =
    match Option.bind (Jsonx.member "name" v) Jsonx.to_str with
    | Some s -> s
    | None -> die "scenario without a name field"
  in
  let qps_scenarios =
    match Jsonx.path [ "experiments"; "qps"; "scenarios" ] doc with
    | None -> []
    | Some v -> (
      match Jsonx.to_list v with
      | None -> die "experiments.qps.scenarios is not an array"
      | Some l ->
        List.map
          (fun s ->
            match num [ "qps" ] s with
            | Some q -> ("qps/" ^ name s, q)
            | None -> die "scenario %S has no qps" (name s))
          l)
  in
  let session_scenarios =
    match Jsonx.path [ "experiments"; "session"; "scenarios" ] doc with
    | None -> []
    | Some v -> (
      match Jsonx.to_list v with
      | None -> die "experiments.session.scenarios is not an array"
      | Some l ->
        List.concat_map
          (fun s ->
            let side key =
              match num [ key; "qps" ] s with
              | Some q -> [ (Printf.sprintf "session/%s/%s" (name s) key, q) ]
              | None -> []
            in
            side "uncached" @ side "cached")
          l)
  in
  let concurrent_scenarios =
    match Jsonx.path [ "experiments"; "concurrent"; "scenarios" ] doc with
    | None -> []
    | Some v -> (
      match Jsonx.to_list v with
      | None -> die "experiments.concurrent.scenarios is not an array"
      | Some l ->
        List.concat_map
          (fun s ->
            let points =
              match Option.bind (Jsonx.member "points" s) Jsonx.to_list with
              | Some ps -> ps
              | None -> die "concurrent scenario %S has no points" (name s)
            in
            List.map
              (fun p ->
                match (num [ "domains" ] p, num [ "qps" ] p) with
                | Some d, Some q ->
                  ( Printf.sprintf "concurrent/%s/d%d" (name s)
                      (int_of_float d),
                    q )
                | _ -> die "concurrent point in %S lacks domains/qps" (name s))
              points)
          l)
  in
  let serve_scenarios =
    match Jsonx.path [ "experiments"; "serve"; "scenarios" ] doc with
    | None -> []
    | Some v -> (
      match Jsonx.to_list v with
      | None -> die "experiments.serve.scenarios is not an array"
      | Some l ->
        List.map
          (fun s ->
            match (num [ "clients" ] s, num [ "qps" ] s) with
            | Some c, Some q ->
              (Printf.sprintf "serve/%s/c%d" (name s) (int_of_float c), q)
            | _ -> die "serve scenario %S lacks clients/qps" (name s))
          l)
  in
  let append_sides =
    match Jsonx.path [ "experiments"; "append" ] doc with
    | None -> []
    | Some a ->
      List.filter_map
        (fun side ->
          match num [ side; "qps" ] a with
          | Some q -> Some ("append/" ^ side, q)
          | None -> die "experiments.append.%s has no qps" side)
        [ "baseline" ]
  in
  qps_scenarios @ session_scenarios @ concurrent_scenarios @ serve_scenarios
  @ append_sides

(* The dispatch microbench's (mode, domains) points as (label, qps)
   pairs, gated separately under the loose dispatch tolerance. *)
let dispatch_series doc =
  let num path v = Option.bind (Jsonx.path path v) Jsonx.number in
  match Jsonx.path [ "experiments"; "dispatch"; "points" ] doc with
  | None -> []
  | Some v -> (
    match Jsonx.to_list v with
    | None -> die "experiments.dispatch.points is not an array"
    | Some l ->
      List.map
        (fun p ->
          match
            ( Option.bind (Jsonx.member "mode" p) Jsonx.to_str,
              num [ "domains" ] p,
              num [ "qps" ] p )
          with
          | Some m, Some d, Some q ->
            (Printf.sprintf "dispatch/%s/d%d" m (int_of_float d), q)
          | _ -> die "dispatch point lacks mode/domains/qps")
        l)

(* The serve experiment's per-phase p99s as (label, p99_us) pairs —
   both the cumulative /statusz attribution and, when present, the
   sliding-window rolling p99s ([.../window/<phase>]), gated under the
   same loose phase tolerance (windowed quantiles over a ~1s bench
   point are noisier still; the gate is for order-of-magnitude
   blowups). Absent phases (a pre-attribution document) contribute
   nothing. *)
let phase_series doc =
  let num path v = Option.bind (Jsonx.path path v) Jsonx.number in
  let name v =
    match Option.bind (Jsonx.member "name" v) Jsonx.to_str with
    | Some s -> s
    | None -> die "scenario without a name field"
  in
  (* the append experiment's read p99s ride the same inverse gate:
     "read latency under a live append stream must not blow up" is
     exactly the regression this experiment exists to catch *)
  let append_p99s =
    match Jsonx.path [ "experiments"; "append" ] doc with
    | None -> []
    | Some a ->
      List.filter_map
        (fun side ->
          match num [ side; "latency"; "p99_us" ] a with
          | Some p -> Some (Printf.sprintf "append/%s/read_p99" side, p)
          | None -> die "experiments.append.%s lacks latency.p99_us" side)
        [ "baseline"; "during" ]
  in
  append_p99s
  @
  match Jsonx.path [ "experiments"; "serve"; "scenarios" ] doc with
  | None -> []
  | Some v -> (
    match Jsonx.to_list v with
    | None -> die "experiments.serve.scenarios is not an array"
    | Some l ->
      List.concat_map
        (fun s ->
          let phase_names =
            [ "parse"; "queue"; "dispatch"; "execute"; "deliver"; "write" ]
          in
          let cumulative =
            match (num [ "clients" ] s, Jsonx.member "phases" s) with
            | Some c, Some phases ->
              List.filter_map
                (fun phase ->
                  match num [ phase; "p99_us" ] phases with
                  | Some p ->
                    Some
                      ( Printf.sprintf "serve/%s/c%d/phase/%s" (name s)
                          (int_of_float c) phase,
                        p )
                  | None ->
                    die "serve scenario %S phase %s lacks p99_us" (name s)
                      phase)
                phase_names
            | _ -> []
          in
          let windowed =
            match
              (num [ "clients" ] s, Jsonx.path [ "window"; "phases" ] s)
            with
            | Some c, Some phases ->
              List.filter_map
                (fun phase ->
                  match num [ phase; "p99_us" ] phases with
                  | Some p ->
                    Some
                      ( Printf.sprintf "serve/%s/c%d/window/%s" (name s)
                          (int_of_float c) phase,
                        p )
                  | None -> None)
                phase_names
            | _ -> []
          in
          cumulative @ windowed)
        l)

let () =
  let old_path = ref None and new_path = ref None and tolerance = ref 20.0 in
  let phase_tolerance = ref 400.0 in
  let dispatch_tolerance = ref 90.0 in
  let rec parse = function
    | [] -> ()
    | "--tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> tolerance := t
      | _ -> die "--tolerance expects a non-negative percentage, got %S" v);
      parse rest
    | "--tolerance" :: [] -> die "--tolerance expects a value"
    | "--phase-tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> phase_tolerance := t
      | _ ->
        die "--phase-tolerance expects a non-negative percentage, got %S" v);
      parse rest
    | "--phase-tolerance" :: [] -> die "--phase-tolerance expects a value"
    | "--dispatch-tolerance" :: v :: rest ->
      (match float_of_string_opt v with
      | Some t when t >= 0.0 -> dispatch_tolerance := t
      | _ ->
        die "--dispatch-tolerance expects a non-negative percentage, got %S" v);
      parse rest
    | "--dispatch-tolerance" :: [] -> die "--dispatch-tolerance expects a value"
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
      die "unknown option %S" arg
    | path :: rest ->
      (match (!old_path, !new_path) with
      | None, _ -> old_path := Some path
      | Some _, None -> new_path := Some path
      | Some _, Some _ -> die "too many arguments: %S" path);
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let old_path, new_path =
    match (!old_path, !new_path) with
    | Some o, Some n -> (o, n)
    | _ ->
      die
        "usage: compare_json OLD.json NEW.json [--tolerance PCT] \
         [--phase-tolerance PCT] [--dispatch-tolerance PCT]"
  in
  let old_doc = read_doc old_path and new_doc = read_doc new_path in
  let old_series = series old_doc and new_series = series new_doc in
  let old_phases = phase_series old_doc and new_phases = phase_series new_doc in
  let old_dispatch = dispatch_series old_doc
  and new_dispatch = dispatch_series new_doc in
  let floor = 1.0 -. (!tolerance /. 100.0) in
  let regressions = ref [] in
  Printf.printf "%-34s %12s %12s %9s\n" "series" "old qps" "new qps" "delta";
  List.iter
    (fun (label, old_qps) ->
      match List.assoc_opt label new_series with
      | None ->
        Printf.printf "%-34s %12.1f %12s %9s\n" label old_qps "missing" "-";
        regressions := Printf.sprintf "%s: missing from %s" label new_path :: !regressions
      | Some new_qps ->
        let delta = 100.0 *. ((new_qps /. old_qps) -. 1.0) in
        Printf.printf "%-34s %12.1f %12.1f %+8.1f%%\n" label old_qps new_qps delta;
        if new_qps < old_qps *. floor then
          regressions :=
            Printf.sprintf "%s: %.1f -> %.1f qps (%+.1f%%, tolerance -%.0f%%)"
              label old_qps new_qps delta !tolerance
            :: !regressions)
    old_series;
  List.iter
    (fun (label, _) ->
      if not (List.mem_assoc label old_series) then
        Printf.printf "%-34s %12s (new series, not gated)\n" label "-")
    new_series;
  (* Dispatch gate: same direction as qps, its own loose floor. *)
  if old_dispatch <> [] || new_dispatch <> [] then begin
    let dfloor = 1.0 -. (!dispatch_tolerance /. 100.0) in
    Printf.printf "\n%-34s %12s %12s %9s\n" "dispatch series" "old req/s"
      "new req/s" "delta";
    List.iter
      (fun (label, old_qps) ->
        match List.assoc_opt label new_dispatch with
        | None ->
          Printf.printf "%-34s %12.0f %12s %9s\n" label old_qps "missing" "-";
          regressions :=
            Printf.sprintf "%s: missing from %s" label new_path :: !regressions
        | Some new_qps ->
          let delta = 100.0 *. ((new_qps /. old_qps) -. 1.0) in
          Printf.printf "%-34s %12.0f %12.0f %+8.1f%%\n" label old_qps new_qps
            delta;
          if new_qps < old_qps *. dfloor then
            regressions :=
              Printf.sprintf
                "%s: %.0f -> %.0f req/s (%+.1f%%, tolerance -%.0f%%)" label
                old_qps new_qps delta !dispatch_tolerance
              :: !regressions)
      old_dispatch;
    List.iter
      (fun (label, _) ->
        if not (List.mem_assoc label old_dispatch) then
          Printf.printf "%-34s %12s (new series, not gated)\n" label "-")
      new_dispatch
  end;
  (* Phase-latency gate: inverse direction (new must not be slower),
     loose relative tolerance plus an absolute 500us slack. *)
  if old_phases <> [] || new_phases <> [] then begin
    let mult = 1.0 +. (!phase_tolerance /. 100.0) in
    let slack_us = 500.0 in
    Printf.printf "\n%-44s %10s %10s %9s\n" "phase series" "old p99us"
      "new p99us" "delta";
    List.iter
      (fun (label, old_p99) ->
        match List.assoc_opt label new_phases with
        | None ->
          Printf.printf "%-44s %10.0f %10s %9s\n" label old_p99 "missing" "-";
          regressions :=
            Printf.sprintf "%s: missing from %s" label new_path :: !regressions
        | Some new_p99 ->
          let delta =
            if old_p99 > 0.0 then 100.0 *. ((new_p99 /. old_p99) -. 1.0)
            else 0.0
          in
          Printf.printf "%-44s %10.0f %10.0f %+8.1f%%\n" label old_p99 new_p99
            delta;
          if new_p99 > (old_p99 *. mult) +. slack_us then
            regressions :=
              Printf.sprintf
                "%s: p99 %.0f -> %.0f us (+%.0f%%, tolerance +%.0f%% + %.0fus)"
                label old_p99 new_p99 delta !phase_tolerance slack_us
              :: !regressions)
      old_phases;
    List.iter
      (fun (label, _) ->
        if not (List.mem_assoc label old_phases) then
          Printf.printf "%-44s %10s (new series, not gated)\n" label "-")
      new_phases
  end;
  match List.rev !regressions with
  | [] ->
    Printf.printf "OK: %d series within -%.0f%% tolerance%s%s\n"
      (List.length old_series) !tolerance
      (if old_dispatch = [] then ""
       else
         Printf.sprintf ", %d dispatch series within -%.0f%%"
           (List.length old_dispatch) !dispatch_tolerance)
      (if old_phases = [] then ""
       else
         Printf.sprintf ", %d phase series within +%.0f%%"
           (List.length old_phases) !phase_tolerance)
  | rs ->
    List.iter (fun r -> prerr_endline ("REGRESSION " ^ r)) rs;
    exit 1
