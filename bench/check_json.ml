(* Validates a bench --json document: parses it with the same Jsonx the
   harness wrote it with and checks the structure the downstream
   tooling relies on. Exit 0 on success, 1 with a message otherwise.
   Wired into the @bench-json alias so CI fails on malformed output. *)

module J = Olar_obs.Jsonx

let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("check_json: " ^ m); exit 1) fmt

let require what = function Some v -> v | None -> fail "missing %s" what

let number what v = require what (Option.bind v J.number)

let () =
  let path = match Sys.argv with [| _; p |] -> p | _ -> fail "usage: check_json FILE" in
  let text = In_channel.with_open_bin path In_channel.input_all in
  let doc = match J.of_string text with Ok v -> v | Error e -> fail "%s: %s" path e in
  let version = number "schema_version" (J.member "schema_version" doc) in
  if version <> 1.0 then fail "unsupported schema_version %g" version;
  ignore (require "scale" (Option.bind (J.member "scale" doc) J.to_str));
  let experiments = require "experiments" (J.member "experiments" doc) in
  let qps = require "experiments.qps" (J.member "qps" experiments) in
  ignore (number "qps.lattice.vertices" (J.path [ "lattice"; "vertices" ] qps));
  let scenarios =
    require "qps.scenarios"
      (Option.bind (J.member "scenarios" qps) J.to_list)
  in
  if scenarios = [] then fail "qps.scenarios is empty";
  List.iter
    (fun s ->
      let name =
        require "scenario.name" (Option.bind (J.member "name" s) J.to_str)
      in
      let check what v =
        let x = number (name ^ "." ^ what) v in
        if x < 0.0 then fail "%s.%s is negative" name what
      in
      check "qps" (J.member "qps" s);
      check "queries" (J.member "queries" s);
      check "latency.p50_us" (J.path [ "latency"; "p50_us" ] s);
      check "latency.p99_us" (J.path [ "latency"; "p99_us" ] s);
      check "latency.samples" (J.path [ "latency"; "samples" ] s);
      check "work.total" (J.path [ "work"; "total" ] s))
    scenarios;
  (* session is optional (only present when that experiment ran), but
     when present each scenario must carry both sides of the cached vs
     uncached comparison plus the cache accounting. *)
  (match J.member "session" experiments with
  | None -> ()
  | Some session ->
    let scenarios =
      require "session.scenarios"
        (Option.bind (J.member "scenarios" session) J.to_list)
    in
    if scenarios = [] then fail "session.scenarios is empty";
    List.iter
      (fun s ->
        let name =
          require "session scenario.name"
            (Option.bind (J.member "name" s) J.to_str)
        in
        let check what v =
          let x = number ("session." ^ name ^ "." ^ what) v in
          if x < 0.0 then fail "session.%s.%s is negative" name what
        in
        check "cached.qps" (J.path [ "cached"; "qps" ] s);
        check "cached.queries" (J.path [ "cached"; "queries" ] s);
        check "uncached.qps" (J.path [ "uncached"; "qps" ] s);
        check "uncached.queries" (J.path [ "uncached"; "queries" ] s);
        check "speedup" (J.member "speedup" s);
        check "cache.hits" (J.path [ "cache"; "hits" ] s);
        check "cache.misses" (J.path [ "cache"; "misses" ] s);
        check "cache.refines" (J.path [ "cache"; "refines" ] s);
        check "cache.evictions" (J.path [ "cache"; "evictions" ] s);
        check "cache.resident_bytes" (J.path [ "cache"; "resident_bytes" ] s))
      scenarios);
  (* concurrent is optional (only present when that experiment ran);
     when present each scenario must carry a non-empty domain sweep
     with qps and latency quantiles per point. *)
  (match J.member "concurrent" experiments with
  | None -> ()
  | Some concurrent ->
    ignore
      (number "concurrent.recommended_domains"
         (J.member "recommended_domains" concurrent));
    let scenarios =
      require "concurrent.scenarios"
        (Option.bind (J.member "scenarios" concurrent) J.to_list)
    in
    if scenarios = [] then fail "concurrent.scenarios is empty";
    List.iter
      (fun s ->
        let name =
          require "concurrent scenario.name"
            (Option.bind (J.member "name" s) J.to_str)
        in
        let points =
          require
            ("concurrent." ^ name ^ ".points")
            (Option.bind (J.member "points" s) J.to_list)
        in
        if points = [] then fail "concurrent.%s.points is empty" name;
        List.iter
          (fun p ->
            let check what v =
              let x = number ("concurrent." ^ name ^ "." ^ what) v in
              if x < 0.0 then fail "concurrent.%s.%s is negative" name what
            in
            let domains =
              number
                ("concurrent." ^ name ^ ".domains")
                (J.member "domains" p)
            in
            if domains < 1.0 then fail "concurrent.%s.domains < 1" name;
            check "qps" (J.member "qps" p);
            check "queries" (J.member "queries" p);
            check "speedup_vs_1" (J.member "speedup_vs_1" p);
            check "latency.p50_us" (J.path [ "latency"; "p50_us" ] p);
            check "latency.p99_us" (J.path [ "latency"; "p99_us" ] p);
            check "latency.samples" (J.path [ "latency"; "samples" ] p))
          points)
      scenarios);
  (* append is optional (only present when that experiment ran); when
     present it carries both phases of the read-latency-under-appends
     comparison: the baseline and during-appends sides each with qps
     and latency quantiles, plus the append accounting and the p99
     ratio the acceptance gate reads. *)
  (match J.member "append" experiments with
  | None -> ()
  | Some append ->
    let domains = number "append.domains" (J.member "domains" append) in
    if domains < 1.0 then fail "append.domains < 1";
    let check what v =
      let x = number ("append." ^ what) v in
      if x < 0.0 then fail "append.%s is negative" what
    in
    List.iter
      (fun phase ->
        check (phase ^ ".qps") (J.path [ phase; "qps" ] append);
        check (phase ^ ".queries") (J.path [ phase; "queries" ] append);
        check (phase ^ ".latency.p50_us") (J.path [ phase; "latency"; "p50_us" ] append);
        check (phase ^ ".latency.p99_us") (J.path [ phase; "latency"; "p99_us" ] append);
        check (phase ^ ".latency.samples")
          (J.path [ phase; "latency"; "samples" ] append))
      [ "baseline"; "during" ];
    let appends = number "append.appends" (J.member "appends" append) in
    if appends < 1.0 then fail "append.appends < 1 - no live appends folded";
    check "promoted" (J.member "promoted" append);
    check "generations" (J.member "generations" append);
    check "p99_ratio" (J.member "p99_ratio" append));
  (* serve is optional (only present when that experiment ran); when
     present each scenario is one (name, clients) point of the loopback
     HTTP sweep and must carry wire qps, the shed count and latency
     quantiles. *)
  (match J.member "serve" experiments with
  | None -> ()
  | Some serve ->
    let domains = number "serve.domains" (J.member "domains" serve) in
    if domains < 1.0 then fail "serve.domains < 1";
    let scenarios =
      require "serve.scenarios"
        (Option.bind (J.member "scenarios" serve) J.to_list)
    in
    if scenarios = [] then fail "serve.scenarios is empty";
    List.iter
      (fun s ->
        let name =
          require "serve scenario.name"
            (Option.bind (J.member "name" s) J.to_str)
        in
        let check what v =
          let x = number ("serve." ^ name ^ "." ^ what) v in
          if x < 0.0 then fail "serve.%s.%s is negative" name what
        in
        let clients = number ("serve." ^ name ^ ".clients") (J.member "clients" s) in
        if clients < 1.0 then fail "serve.%s.clients < 1" name;
        check "qps" (J.member "qps" s);
        check "queries" (J.member "queries" s);
        check "shed" (J.member "shed" s);
        check "latency.p50_us" (J.path [ "latency"; "p50_us" ] s);
        check "latency.p99_us" (J.path [ "latency"; "p99_us" ] s);
        check "latency.samples" (J.path [ "latency"; "samples" ] s);
        (* the /statusz phase attribution: all six phases, each with a
           sample count, a time sum and quantiles, none negative *)
        let queries = number ("serve." ^ name ^ ".queries") (J.member "queries" s) in
        List.iter
          (fun phase ->
            check ("phases." ^ phase ^ ".sum_s")
              (J.path [ "phases"; phase; "sum_s" ] s);
            check ("phases." ^ phase ^ ".p50_us")
              (J.path [ "phases"; phase; "p50_us" ] s);
            check ("phases." ^ phase ^ ".p99_us")
              (J.path [ "phases"; phase; "p99_us" ] s);
            let c =
              number
                ("serve." ^ name ^ ".phases." ^ phase ^ ".count")
                (J.path [ "phases"; phase; "count" ] s)
            in
            if c < queries then
              fail "serve.%s.phases.%s.count %g < queries %g" name phase c
                queries)
          [ "parse"; "queue"; "dispatch"; "execute"; "deliver"; "write" ];
        (* the sliding-window view: rates plus a rolling p99 per phase *)
        check "window.qps" (J.path [ "window"; "qps" ] s);
        check "window.covered_s" (J.path [ "window"; "covered_s" ] s);
        check "window.queries" (J.path [ "window"; "queries" ] s);
        List.iter
          (fun phase ->
            check ("window.phases." ^ phase ^ ".p99_us")
              (J.path [ "window"; "phases"; phase; "p99_us" ] s);
            check ("window.phases." ^ phase ^ ".count")
              (J.path [ "window"; "phases"; phase; "count" ] s))
          [ "parse"; "queue"; "dispatch"; "execute"; "deliver"; "write" ];
        (* the GC eventring summary: pause count plus windowed pause
           quantiles (the olar_gc_pause_seconds series' /statusz view) *)
        (match J.member "gc" s with
        | None -> fail "serve.%s lacks the gc section" name
        | Some gc ->
          check "gc.pauses" (J.member "pauses" gc);
          check "gc.window.p99_us" (J.path [ "window"; "p99_us" ] gc)))
      scenarios);
  (* dispatch is optional (only present when the dispatch microbench
     merged its sweep in); when present each point is one (mode,
     domains) cell of the old-vs-new scheduler grid. *)
  (match J.member "dispatch" experiments with
  | None -> ()
  | Some dispatch ->
    let requests = number "dispatch.requests" (J.member "requests" dispatch) in
    if requests < 1.0 then fail "dispatch.requests < 1";
    let points =
      require "dispatch.points"
        (Option.bind (J.member "points" dispatch) J.to_list)
    in
    if points = [] then fail "dispatch.points is empty";
    List.iter
      (fun p ->
        let mode =
          require "dispatch point.mode"
            (Option.bind (J.member "mode" p) J.to_str)
        in
        let scheduler =
          require
            ("dispatch." ^ mode ^ ".scheduler")
            (Option.bind (J.member "scheduler" p) J.to_str)
        in
        if scheduler <> "round" && scheduler <> "submit" then
          fail "dispatch.%s.scheduler %S is neither round nor submit" mode
            scheduler;
        let domains =
          number ("dispatch." ^ mode ^ ".domains") (J.member "domains" p)
        in
        if domains < 1.0 then fail "dispatch.%s.domains < 1" mode;
        let check what v =
          let x = number ("dispatch." ^ mode ^ "." ^ what) v in
          if x < 0.0 then fail "dispatch.%s.%s is negative" mode what
        in
        check "qps" (J.member "qps" p);
        check "queries" (J.member "queries" p);
        check "seconds" (J.member "seconds" p))
      points);
  (* fig10 is optional (only present when that experiment ran), but when
     present its points must carry the rule/work fields. *)
  (match J.member "fig10" experiments with
  | None -> ()
  | Some fig10 ->
    let points =
      require "fig10.points" (Option.bind (J.member "points" fig10) J.to_list)
    in
    List.iter
      (fun p ->
        ignore (number "fig10.point.rules" (J.member "rules" p));
        ignore (number "fig10.point.work" (J.member "work" p));
        ignore (number "fig10.point.seconds" (J.member "seconds" p)))
      points);
  Printf.printf "check_json: %s ok (%d scenarios)\n" path (List.length scenarios)
