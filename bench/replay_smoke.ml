(* Capture -> replay smoke check (the @replay-smoke alias).

   Generates a small deterministic database, captures a 200-query canned
   workload — every query family, including one boundary walk per cycle
   and one mid-stream append — to a jsonl log, then replays the log
   against freshly preprocessed engines both uncached and cached. Any
   digest mismatch is a correctness regression and fails the alias. *)

open Olar_data
module Engine = Olar_core.Engine
module Lattice = Olar_core.Lattice
module Session = Olar_serve.Session
module Recorder = Olar_replay.Recorder
module Record = Olar_replay.Record
module Replay = Olar_replay.Replay

let num_queries = 200
let primary_support = 0.01

let params =
  Olar_datagen.Params.make
    ~over:
      {
        Olar_datagen.Params.default with
        num_items = 120;
        num_potential = 200;
        seed = 7;
      }
    ~avg_transaction_size:8.0 ~avg_itemset_size:3.0 ~num_transactions:2000 ()

(* Each engine gets its own obs context (and so its own registry of
   work counters): the recorder reads per-query deltas from them. *)
let build_engine db =
  Engine.at_threshold ~obs:(Olar_obs.Obs.create ()) db ~primary_support

(* Deterministic query mix. Support levels sit at or above the primary
   threshold so no query is refused; start itemsets are frequent
   singletons so constrained queries land on live lattice regions. *)
let run_workload recorder engine db =
  let lat = Engine.lattice engine in
  let singletons = ref [] in
  let deepest = ref Itemset.empty in
  for v = 0 to Lattice.num_vertices lat - 1 do
    let x = Lattice.itemset lat v in
    if Itemset.cardinal x = 1 then singletons := x :: !singletons;
    if Itemset.cardinal x > Itemset.cardinal !deepest then deepest := x
  done;
  let singletons = Array.of_list (List.rev !singletons) in
  if Array.length singletons = 0 then failwith "no frequent singletons";
  let p = Engine.primary_threshold engine in
  let levels = [| p; p *. 1.5; p *. 2.5; p *. 4.0 |] in
  let confs = [| 0.2; 0.5; 0.8 |] in
  let rng = Random.State.make [| 0x5eed |] in
  for i = 0 to num_queries - 1 do
    let containing =
      if i mod 3 = 0 then Itemset.empty
      else singletons.(Random.State.int rng (Array.length singletons))
    in
    let minsup = levels.(Random.State.int rng (Array.length levels)) in
    let minconf = confs.(Random.State.int rng (Array.length confs)) in
    if i = num_queries / 2 then begin
      (* mid-stream maintenance: a tiny delta over the same universe *)
      let rows =
        List.init 5 (fun _ ->
            Itemset.to_list
              singletons.(Random.State.int rng (Array.length singletons)))
      in
      let delta = Database.of_lists ~num_items:(Database.num_items db) rows in
      ignore (Recorder.append recorder delta)
    end
    else
      match i mod 8 with
      | 0 -> ignore (Recorder.itemset_ids ~containing recorder ~minsup)
      | 1 -> ignore (Recorder.count_itemsets ~containing recorder ~minsup)
      | 2 -> ignore (Recorder.essential_rules ~containing recorder ~minsup ~minconf)
      | 3 -> ignore (Recorder.all_rules ~containing recorder ~minsup ~minconf)
      | 4 ->
        ignore (Recorder.single_consequent_rules ~containing recorder ~minsup ~minconf)
      | 5 ->
        ignore
          (Recorder.support_for_k_itemsets recorder ~containing
             ~k:(1 + Random.State.int rng 50))
      | 6 ->
        ignore
          (Recorder.support_for_k_rules recorder ~involving:containing ~minconf
             ~k:(1 + Random.State.int rng 20))
      | _ -> ignore (Recorder.boundary recorder ~target:!deepest ~minconf)
  done

let replay_against ~budget_bytes db records =
  let session = Session.create ~budget_bytes (build_engine db) in
  Replay.run session records

let () =
  let db = Olar_datagen.Quest.generate params in
  let log_path = Filename.temp_file "olar_replay_smoke" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out log_path in
      let emit r =
        output_string oc (Record.to_json_line r);
        output_char oc '\n'
      in
      let capture_session = Session.create ~budget_bytes:0 (build_engine db) in
      let recorder = Recorder.create ~emit capture_session in
      run_workload recorder (Session.engine capture_session) db;
      close_out oc;
      let records =
        match Replay.load log_path with
        | Ok rs -> rs
        | Error e -> failwith e
      in
      if List.length records <> num_queries then
        failwith
          (Printf.sprintf "captured %d records, expected %d"
             (List.length records) num_queries);
      let check label (report : Replay.report) =
        Printf.printf
          "%s: %d queries, %d mismatches (%d errors), work %d -> %d vertices\n"
          label report.total report.mismatches report.errors
          report.recorded_vertices report.replayed_vertices;
        report.mismatches = 0
      in
      let ok_uncached =
        check "uncached" (replay_against ~budget_bytes:0 db records)
      in
      let ok_cached =
        check "cached(8MiB)"
          (replay_against ~budget_bytes:(8 * 1024 * 1024) db records)
      in
      if not (ok_uncached && ok_cached) then exit 1;
      print_endline "replay smoke OK")
