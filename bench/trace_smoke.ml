(* Request-tracing smoke check (the @trace-smoke alias).

   Serves a deterministic canned workload through an in-process daemon
   with tracing on and a 1-in-2 request sample, then validates the
   emitted spans file end to end: every sampled request must have
   produced one http.request root with exactly six phase.* children,
   every span must carry the domain that produced it, and children must
   precede their parents in file order — the child-first contract
   consumers rebuild trees from, which {!Trace.Sharded.flush} promises
   to preserve across the per-domain buffer merge. The /statusz phase
   histograms must account for every served query.

   Usage: trace_smoke.exe TRACE_OUT [QUERIES] *)

open Olar_data
module Engine = Olar_core.Engine
module Server = Olar_net.Server
module Http = Olar_net.Http
module Record = Olar_replay.Record
module Fnv = Olar_replay.Fnv
module Jsonx = Olar_obs.Jsonx

let primary_support = 0.01

(* Same deterministic dataset as serve_smoke.ml. *)
let params =
  Olar_datagen.Params.make
    ~over:
      {
        Olar_datagen.Params.default with
        num_items = 120;
        num_potential = 200;
        seed = 7;
      }
    ~avg_transaction_size:8.0 ~avg_itemset_size:3.0 ~num_transactions:2000 ()

let die fmt =
  Printf.ksprintf (fun m -> prerr_endline ("trace_smoke: " ^ m); exit 1) fmt

let key ?(containing = Itemset.empty) ?minsup ?minconf kind =
  {
    Record.seq = 0;
    kind;
    containing;
    antecedent_includes = Itemset.empty;
    consequent_includes = Itemset.empty;
    allow_empty_antecedent = false;
    minsup;
    minconf;
    k = None;
    delta = [];
    delta_num_items = 0;
    cache = Record.Passthrough;
    digest = Fnv.empty;
    result_size = 0;
    latency_s = 0.0;
    vertices = 0;
    heap_pops = 0;
    epoch = 0;
  }

(* A small mixed workload, every key at or above the primary threshold
   so every answer is a 200. *)
let workload engine n =
  let p = Engine.primary_threshold engine in
  List.init n (fun i ->
      let minsup = if i mod 2 = 0 then p else p *. 2.0 in
      match i mod 3 with
      | 0 -> key Record.Count_itemsets ~minsup
      | 1 -> key Record.Find_itemsets ~minsup
      | _ -> key Record.Essential_rules ~minsup ~minconf:0.3)

(* Minimal blocking loopback client. *)
let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

let roundtrip fd buf off s =
  let sb = Bytes.unsafe_of_string s in
  let rec wr o =
    if o < String.length s then wr (o + Unix.write fd sb o (String.length s - o))
  in
  wr 0;
  let chunk = Bytes.create 8192 in
  let rec rd () =
    match Http.parse_response (Buffer.contents buf) ~off:!off with
    | Http.Complete (resp, used) ->
      off := !off + used;
      resp
    | Http.Failed { status; reason } ->
      die "malformed response: %d %s" status reason
    | Http.Incomplete -> (
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> die "server closed the connection"
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        rd ())
  in
  rd ()

let phase_names =
  [ "phase.parse"; "phase.queue"; "phase.dispatch"; "phase.execute";
    "phase.deliver"; "phase.write" ]

let () =
  let trace_path, num_queries =
    match Sys.argv with
    | [| _; t |] -> (t, 40)
    | [| _; t; n |] -> (t, int_of_string n)
    | _ -> die "usage: trace_smoke TRACE_OUT [QUERIES]"
  in
  let db = Olar_datagen.Quest.generate params in
  let oc = open_out trace_path in
  let sink = Olar_obs.Sink.jsonl oc in
  let engine =
    Engine.at_threshold ~obs:(Olar_obs.Obs.create ~trace:sink ()) db
      ~primary_support
  in
  let sample = 2 in
  let config =
    { Server.default_config with Server.port = 0; trace_sample = sample }
  in
  let keys = workload engine num_queries in
  let statusz =
    Server.with_server ~config ~domains:2 ~budget_bytes:0 engine (fun srv ->
        let fd = connect (Server.port srv) in
        let buf = Buffer.create 8192 in
        let off = ref 0 in
        List.iteri
          (fun i k ->
            let body = Record.key_to_json_line k in
            let resp =
              roundtrip fd buf off
                (Http.render_request ~meth:"POST" ~target:"/query" body)
            in
            if resp.Http.status <> 200 then
              die "query %d answered %d (body %s)" i resp.Http.status body)
          keys;
        let sz =
          roundtrip fd buf off
            (Http.render_request ~meth:"GET" ~target:"/statusz" "")
        in
        if sz.Http.status <> 200 then die "statusz answered %d" sz.Http.status;
        (try Unix.close fd with _ -> ());
        sz.Http.resp_body)
  in
  (* with_server stopped the daemon, which flushed every domain's span
     buffer into the jsonl sink *)
  close_out oc;

  (* /statusz: the six phase histograms account for every served query *)
  (match Jsonx.of_string statusz with
  | Error e -> die "statusz is not JSON: %s" e
  | Ok json ->
    List.iter
      (fun phase ->
        match
          Option.bind (Jsonx.path [ "phases"; phase; "count" ] json) Jsonx.number
        with
        | Some c when int_of_float c = num_queries -> ()
        | Some c ->
          die "phase %s counted %d of %d queries" phase (int_of_float c)
            num_queries
        | None -> die "statusz lacks phases/%s/count" phase)
      [ "parse"; "queue"; "dispatch"; "execute"; "deliver"; "write" ]);

  (* the spans file: parse every line, check domain tags, child-first
     order and the per-request root/children shape *)
  let spans = ref [] in
  In_channel.with_open_text trace_path (fun ic ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then
            match Jsonx.of_string line with
            | Error e -> die "unparsable span line %S: %s" line e
            | Ok j -> spans := j :: !spans
        done
      with End_of_file -> ());
  let spans = Array.of_list (List.rev !spans) in
  if Array.length spans = 0 then die "trace file is empty";
  let str name j = Option.bind (Jsonx.member name j) Jsonx.to_str in
  let num name j = Option.bind (Jsonx.member name j) Jsonx.number in
  let index_of_id = Hashtbl.create 256 in
  Array.iteri
    (fun i j ->
      match num "id" j with
      | Some id -> Hashtbl.replace index_of_id (int_of_float id) i
      | None -> die "span %d lacks an id" i)
    spans;
  Array.iteri
    (fun i j ->
      (match Option.bind (Jsonx.path [ "attrs"; "domain" ] j) Jsonx.number with
      | Some d when d >= 0.0 -> ()
      | _ -> die "span %d (%s) lacks a domain tag" i
               (Option.value ~default:"?" (str "name" j)));
      match num "parent" j with
      | None -> () (* root: parent is null *)
      | Some p -> (
        match Hashtbl.find_opt index_of_id (int_of_float p) with
        | None -> die "span %d orphaned: parent %d not in file" i (int_of_float p)
        | Some pi ->
          if pi <= i then
            die "span %d emitted after its parent (line %d): merge broke \
                 child-first order" i pi))
    spans;
  let roots =
    Array.to_list spans
    |> List.filter (fun j -> str "name" j = Some "http.request")
  in
  let expected_roots = (num_queries + sample - 1) / sample in
  if List.length roots <> expected_roots then
    die "expected %d sampled http.request roots, found %d" expected_roots
      (List.length roots);
  List.iter
    (fun root ->
      let rid =
        match num "id" root with Some id -> int_of_float id | None -> -1
      in
      let children =
        Array.to_list spans
        |> List.filter (fun j ->
               match num "parent" j with
               | Some p -> int_of_float p = rid
               | None -> false)
      in
      let names = List.filter_map (fun j -> str "name" j) children in
      if names <> phase_names then
        die "root %d has children [%s], expected the six phases" rid
          (String.concat "; " names);
      match Option.bind (Jsonx.path [ "attrs"; "request" ] root) Jsonx.number with
      | Some r when int_of_float r mod sample = 0 -> ()
      | Some r -> die "root %d carries unsampled request id %d" rid (int_of_float r)
      | None -> die "root %d lacks a request attr" rid)
    roots;
  Printf.printf
    "trace smoke: %d queries, %d sampled request traces, %d spans, \
     child-first and domain-tagged\n"
    num_queries expected_roots (Array.length spans)
