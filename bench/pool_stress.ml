(* Pool-vs-serial stress check (the @stress alias).

   Generates a deterministic database and a deterministic mixed request
   workload — every query family with appends interleaved — then
   executes it once serially (a 1-domain pool, i.e. a plain sequential
   Session walk) and [--repeat] times through an N-domain pool, at
   cache budgets 0 and 8 MiB.

   Two comparison regimes:

   - Batch passes go through [Pool.run], which drains before each
     append, so every run must produce the bitwise-identical sequence
     of FNV-1a result digests in submission order.

   - Stream passes push the whole workload through raw [Pool.submit]
     with no drains, so appends publish new snapshots while reads are
     in flight and a read may legitimately execute on either side of a
     concurrent append. The oracle is epoch-aware: each response's
     completion records the generation it executed at, and its digest
     must be bitwise-equal to a serial execution against that exact
     generation's engine — with the recorded generation bounded below
     by the appends submitted before it. A second, denser workload
     (an append every ~20 requests) keeps several snapshots live at
     once; the retired list must still reclaim to zero after drain.

   Any divergence is a real data race or ordering bug, not noise. *)

open Olar_data
module Engine = Olar_core.Engine
module Lattice = Olar_core.Lattice
module Pool = Olar_serve.Pool
module Session = Olar_serve.Session
module Replay = Olar_replay.Replay
module Fnv = Olar_replay.Fnv

let num_queries = 400
let primary_support = 0.01

let params =
  Olar_datagen.Params.make
    ~over:
      {
        Olar_datagen.Params.default with
        num_items = 120;
        num_potential = 200;
        seed = 7;
      }
    ~avg_transaction_size:8.0 ~avg_itemset_size:3.0 ~num_transactions:2000 ()

(* Each run gets a fresh engine (appends rebuild the lattice) with its
   own obs context, exercising the shared atomic metric cells. *)
let build_engine db =
  Engine.at_threshold ~obs:(Olar_obs.Obs.create ()) db ~primary_support

(* Deterministic request mix over live lattice regions; same shape as
   the replay smoke workload but expressed as by-value pool requests.
   [append_every] sets the append cadence: 100 for the classic mix, ~20
   for the concurrent-append stream passes. *)
let build_workload ?(append_every = 100) db =
  let engine = build_engine db in
  let lat = Engine.lattice engine in
  let singletons = ref [] in
  let deepest = ref Itemset.empty in
  for v = 0 to Lattice.num_vertices lat - 1 do
    let x = Lattice.itemset lat v in
    if Itemset.cardinal x = 1 then singletons := x :: !singletons;
    if Itemset.cardinal x > Itemset.cardinal !deepest then deepest := x
  done;
  let singletons = Array.of_list (List.rev !singletons) in
  if Array.length singletons = 0 then failwith "no frequent singletons";
  let deepest = !deepest in
  let p = Engine.primary_threshold engine in
  let levels = [| p; p *. 1.5; p *. 2.5; p *. 4.0 |] in
  let confs = [| 0.2; 0.5; 0.8 |] in
  let rng = Random.State.make [| 0x5eed; num_queries |] in
  let unconstrained = Olar_core.Boundary.unconstrained in
  Array.init num_queries (fun i ->
      let containing =
        if i mod 3 = 0 then Itemset.empty
        else singletons.(Random.State.int rng (Array.length singletons))
      in
      let minsup = levels.(Random.State.int rng (Array.length levels)) in
      let minconf = confs.(Random.State.int rng (Array.length confs)) in
      if i > 0 && i mod append_every = 0 then begin
        (* a tiny delta over the same universe *)
        let rows =
          List.init 5 (fun _ ->
              Itemset.to_list
                singletons.(Random.State.int rng (Array.length singletons)))
        in
        Pool.Append (Database.of_lists ~num_items:(Database.num_items db) rows)
      end
      else
        match i mod 8 with
        | 0 -> Pool.Find_itemsets { containing; minsup }
        | 1 -> Pool.Count_itemsets { containing; minsup }
        | 2 ->
          Pool.Essential_rules
            { containing; constraints = unconstrained; minsup; minconf }
        | 3 ->
          Pool.All_rules
            { containing; constraints = unconstrained; minsup; minconf }
        | 4 -> Pool.Single_consequent_rules { containing; minsup; minconf }
        | 5 ->
          Pool.Support_for_k_itemsets
            { containing; k = 1 + Random.State.int rng 50 }
        | 6 ->
          Pool.Support_for_k_rules
            { involving = containing; minconf; k = 1 + Random.State.int rng 20 }
        | _ ->
          Pool.Boundary
            { target = deepest; constraints = unconstrained; minconf })

(* One run: a fresh engine, a pool of [domains], the whole workload as
   one batch. Returns the per-request digest sequence. An R_error has
   no digestible result; digest its message instead so error responses
   still participate in the bitwise comparison. *)
let digest_of_response resp =
  match Replay.digest_response resp with
  | Some d -> d
  | None ->
    let msg = match resp with Pool.R_error e -> e | _ -> assert false in
    Fnv.string Fnv.empty msg

let digest_responses out = Array.map digest_of_response out

(* Mirror of the pool's per-request execution against a plain serial
   session — same materialization, same exception-to-R_error rule — so
   both sides digest through the replay layer's semantics. *)
let serial_execute session (req : Pool.request) : Pool.response =
  let materialize lat ids =
    Array.map (fun v -> (Lattice.itemset lat v, Lattice.support lat v)) ids
  in
  try
    match req with
    | Find_itemsets { containing; minsup } ->
      let ids = Session.itemset_ids ~containing session ~minsup in
      R_items (materialize (Engine.lattice (Session.engine session)) ids)
    | Count_itemsets { containing; minsup } ->
      R_count (Session.count_itemsets ~containing session ~minsup)
    | Essential_rules { containing; constraints; minsup; minconf } ->
      R_rules
        (Session.essential_rules ~containing ~constraints session ~minsup
           ~minconf)
    | All_rules { containing; constraints; minsup; minconf } ->
      R_rules
        (Session.all_rules ~containing ~constraints session ~minsup ~minconf)
    | Single_consequent_rules { containing; minsup; minconf } ->
      R_rules
        (Session.single_consequent_rules ~containing session ~minsup ~minconf)
    | Support_for_k_itemsets { containing; k } ->
      R_level (Session.support_for_k_itemsets session ~containing ~k)
    | Support_for_k_rules { involving; minconf; k } ->
      R_level (Session.support_for_k_rules session ~involving ~minconf ~k)
    | Boundary { target; constraints; minconf } ->
      R_entries (Session.boundary ~constraints session ~target ~minconf)
    | Append delta ->
      let promoted = Session.append session delta in
      R_promoted
        { promoted; db_size = Engine.db_size (Session.engine session) }
  with e -> Pool.R_error (Printexc.to_string e)

let digests_of_run ?engine db reqs ~domains ~budget_bytes =
  let engine = match engine with Some e -> e | None -> build_engine db in
  Pool.with_pool ~domains ~budget_bytes engine (fun pool ->
      digest_responses (Pool.run pool reqs))

(* Stream pass: requests go through raw [Pool.submit] with no
   intervening drain, so appends publish snapshots under live read
   traffic. Returns the number of digest/generation mismatches plus
   the count of retired snapshots that never reclaimed.

   The oracle: a first serial pass folds the appends once, capturing
   the (immutable) engine at every generation; the pooled pass records
   each response with the generation its completion carries; a second
   serial pass re-executes every read against exactly that generation's
   engine and demands a bitwise-equal digest. Appends themselves are
   positional — the coordinator folds them in submission order — and
   each read's generation is bounded below by the appends submitted
   before it and above by the final generation. *)
let stream_mismatches db reqs ~domains ~budget_bytes ~label =
  let n = Array.length reqs in
  (* serial pass 1: fold appends, snapshotting each generation *)
  let fold_session = Session.create ~budget_bytes:0 (build_engine db) in
  let engines = ref [ Session.engine fold_session ] in
  let append_digest = Hashtbl.create 16 in
  let append_gen = Hashtbl.create 16 in
  let gens = ref 0 in
  Array.iteri
    (fun i req ->
      match req with
      | Pool.Append _ ->
        let resp = serial_execute fold_session req in
        Hashtbl.replace append_digest i (digest_of_response resp);
        (match resp with
        | Pool.R_promoted _ ->
          incr gens;
          engines := Session.engine fold_session :: !engines
        | _ -> ());
        Hashtbl.replace append_gen i !gens
      | _ -> ())
    reqs;
  let engines = Array.of_list (List.rev !engines) in
  let total_gens = !gens in
  let appends_before = Array.make (max n 1) 0 in
  let acc = ref 0 in
  for i = 0 to n - 1 do
    appends_before.(i) <- !acc;
    match reqs.(i) with
    | Pool.Append _ -> acc := Hashtbl.find append_gen i
    | _ -> ()
  done;
  (* pooled pass: stream everything, appends fully live *)
  let out = Array.make n (Pool.R_error "unserved", -1) in
  let unreclaimed = ref 0 in
  let elapsed =
    snd
      (Olar_util.Timer.time (fun () ->
           Pool.with_pool ~domains ~budget_bytes (build_engine db)
             (fun pool ->
               Array.iteri
                 (fun i req ->
                   Pool.submit pool req (fun resp c ->
                       out.(i) <- (resp, c.Pool.gen)))
                 reqs;
               Pool.drain pool;
               (* every domain adopts at next claim or before parking,
                  so the retired list must empty shortly after drain *)
               let deadline = Unix.gettimeofday () +. 5.0 in
               let rec wait () =
                 let left = Pool.retired_snapshots pool in
                 if left = 0 then ()
                 else if Unix.gettimeofday () > deadline then
                   unreclaimed := left
                 else begin
                   Unix.sleepf 0.002;
                   wait ()
                 end
               in
               wait ())))
  in
  (* serial pass 2: replay each read at its recorded generation *)
  let sessions = Array.make (total_gens + 1) None in
  let session_at g =
    match sessions.(g) with
    | Some s -> s
    | None ->
      let s = Session.create ~budget_bytes engines.(g) in
      sessions.(g) <- Some s;
      s
  in
  let mismatches = ref 0 in
  let complain i fmt =
    incr mismatches;
    Printf.ksprintf
      (fun m ->
        if !mismatches <= 5 then
          Printf.printf "  STREAM MISMATCH at request %d: %s\n%!" i m)
      fmt
  in
  Array.iteri
    (fun i req ->
      let resp, g = out.(i) in
      match req with
      | Pool.Append _ ->
        let d = digest_of_response resp in
        let expected = Hashtbl.find append_digest i in
        if not (Int64.equal d expected) then
          complain i "append digest %s, serial %s" (Fnv.to_hex d)
            (Fnv.to_hex expected);
        let eg = Hashtbl.find append_gen i in
        if g <> eg then complain i "append recorded gen %d, expected %d" g eg
      | _ ->
        if g < appends_before.(i) || g > total_gens then
          complain i "recorded gen %d outside [%d, %d]" g appends_before.(i)
            total_gens
        else begin
          let d = digest_of_response resp in
          let expected =
            digest_of_response (serial_execute (session_at g) req)
          in
          if not (Int64.equal d expected) then
            complain i "digest %s at gen %d, serial %s" (Fnv.to_hex d) g
              (Fnv.to_hex expected)
        end)
    reqs;
  if !unreclaimed > 0 then
    Printf.printf "  STREAM LEAK: %d retired snapshots never reclaimed\n%!"
      !unreclaimed;
  Printf.printf
    "%s: pool(%d domains) live-append stream in %.2fs: %d mismatches (%d \
     gens, %d retired left)\n%!"
    label domains elapsed !mismatches total_gens !unreclaimed;
  !mismatches + !unreclaimed

let () =
  let domains = ref 8 in
  let repeat = ref 3 in
  let rec parse = function
    | [] -> ()
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> domains := n
      | _ -> failwith "--domains must be a positive integer");
      parse rest
    | "--repeat" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> repeat := n
      | _ -> failwith "--repeat must be a positive integer");
      parse rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let db = Olar_datagen.Quest.generate params in
  let reqs = build_workload db in
  (* an append every ~20 requests keeps several generations in flight *)
  let dense_reqs = build_workload ~append_every:21 db in
  let failures = ref 0 in
  List.iter
    (fun budget_bytes ->
      let label =
        if budget_bytes = 0 then "budget 0"
        else Printf.sprintf "budget %dMiB" (budget_bytes / 1024 / 1024)
      in
      let serial, serial_s =
        Olar_util.Timer.time (fun () ->
            digests_of_run db reqs ~domains:1 ~budget_bytes)
      in
      Printf.printf "%s: serial reference %d requests in %.2fs\n%!" label
        (Array.length serial) serial_s;
      for r = 1 to !repeat do
        let pooled, pooled_s =
          Olar_util.Timer.time (fun () ->
              digests_of_run db reqs ~domains:!domains ~budget_bytes)
        in
        let mismatches = ref 0 in
        Array.iteri
          (fun i d ->
            if not (Int64.equal d serial.(i)) then begin
              incr mismatches;
              if !mismatches <= 5 then
                Printf.printf
                  "  MISMATCH at request %d: serial %s, pool %s\n%!" i
                  (Fnv.to_hex serial.(i)) (Fnv.to_hex d)
            end)
          pooled;
        Printf.printf "%s: pool(%d domains) run %d/%d in %.2fs: %d mismatches\n%!"
          label !domains r !repeat pooled_s !mismatches;
        failures := !failures + !mismatches
      done;
      failures :=
        !failures
        + stream_mismatches db reqs ~domains:!domains ~budget_bytes ~label;
      failures :=
        !failures
        + stream_mismatches db dense_reqs ~domains:!domains ~budget_bytes
            ~label:(label ^ " dense-append"))
    [ 0; 8 * 1024 * 1024 ];
  (* Traced pass: the same pooled workload with the sharded tracer on.
     Tracing must not perturb a single digest, and every span the merge
     emits must say which domain produced it. *)
  let sink, spans = Olar_obs.Sink.memory () in
  let traced_engine =
    Engine.at_threshold
      ~obs:(Olar_obs.Obs.create ~trace:sink ())
      db ~primary_support
  in
  let serial = digests_of_run db reqs ~domains:1 ~budget_bytes:0 in
  let traced, traced_s =
    Olar_util.Timer.time (fun () ->
        digests_of_run ~engine:traced_engine db reqs ~domains:!domains
          ~budget_bytes:0)
  in
  Olar_obs.Obs.flush_opt (Engine.obs traced_engine);
  let mismatches = ref 0 in
  Array.iteri
    (fun i d -> if not (Int64.equal d serial.(i)) then incr mismatches)
    traced;
  let emitted = spans () in
  let untagged =
    List.length
      (List.filter
         (fun s -> not (List.mem_assoc "domain" s.Olar_obs.Trace.attrs))
         emitted)
  in
  Printf.printf
    "traced: pool(%d domains) with tracing on in %.2fs: %d mismatches, %d \
     spans (%d untagged)\n%!"
    !domains traced_s !mismatches (List.length emitted) untagged;
  failures := !failures + !mismatches + untagged;
  if emitted = [] then begin
    print_endline "traced: no spans emitted — tracer silently disabled";
    incr failures
  end;
  if !failures > 0 then begin
    Printf.printf "pool stress FAILED: %d digest mismatches\n" !failures;
    exit 1
  end;
  print_endline "pool stress OK: all digests bitwise-identical to serial"
