(* Pool-vs-serial stress check (the @stress alias).

   Generates a deterministic database and a deterministic mixed request
   workload — every query family with appends interleaved as barriers —
   then executes it once serially (a 1-domain pool, i.e. a plain
   sequential Session walk) and [--repeat] times through an N-domain
   pool, at cache budgets 0 and 8 MiB. Every run must produce the
   bitwise-identical sequence of FNV-1a result digests: queries race
   freely between barriers but results land in submission order and
   each one is a pure function of the shared immutable lattice, so any
   divergence is a real data race or ordering bug, not noise. *)

open Olar_data
module Engine = Olar_core.Engine
module Lattice = Olar_core.Lattice
module Pool = Olar_serve.Pool
module Replay = Olar_replay.Replay
module Fnv = Olar_replay.Fnv

let num_queries = 400
let primary_support = 0.01

let params =
  Olar_datagen.Params.make
    ~over:
      {
        Olar_datagen.Params.default with
        num_items = 120;
        num_potential = 200;
        seed = 7;
      }
    ~avg_transaction_size:8.0 ~avg_itemset_size:3.0 ~num_transactions:2000 ()

(* Each run gets a fresh engine (appends rebuild the lattice) with its
   own obs context, exercising the shared atomic metric cells. *)
let build_engine db =
  Engine.at_threshold ~obs:(Olar_obs.Obs.create ()) db ~primary_support

(* Deterministic request mix over live lattice regions; same shape as
   the replay smoke workload but expressed as by-value pool requests. *)
let build_workload db =
  let engine = build_engine db in
  let lat = Engine.lattice engine in
  let singletons = ref [] in
  let deepest = ref Itemset.empty in
  for v = 0 to Lattice.num_vertices lat - 1 do
    let x = Lattice.itemset lat v in
    if Itemset.cardinal x = 1 then singletons := x :: !singletons;
    if Itemset.cardinal x > Itemset.cardinal !deepest then deepest := x
  done;
  let singletons = Array.of_list (List.rev !singletons) in
  if Array.length singletons = 0 then failwith "no frequent singletons";
  let deepest = !deepest in
  let p = Engine.primary_threshold engine in
  let levels = [| p; p *. 1.5; p *. 2.5; p *. 4.0 |] in
  let confs = [| 0.2; 0.5; 0.8 |] in
  let rng = Random.State.make [| 0x5eed; num_queries |] in
  let unconstrained = Olar_core.Boundary.unconstrained in
  Array.init num_queries (fun i ->
      let containing =
        if i mod 3 = 0 then Itemset.empty
        else singletons.(Random.State.int rng (Array.length singletons))
      in
      let minsup = levels.(Random.State.int rng (Array.length levels)) in
      let minconf = confs.(Random.State.int rng (Array.length confs)) in
      if i > 0 && i mod 100 = 0 then begin
        (* barrier: a tiny delta over the same universe *)
        let rows =
          List.init 5 (fun _ ->
              Itemset.to_list
                singletons.(Random.State.int rng (Array.length singletons)))
        in
        Pool.Append (Database.of_lists ~num_items:(Database.num_items db) rows)
      end
      else
        match i mod 8 with
        | 0 -> Pool.Find_itemsets { containing; minsup }
        | 1 -> Pool.Count_itemsets { containing; minsup }
        | 2 ->
          Pool.Essential_rules
            { containing; constraints = unconstrained; minsup; minconf }
        | 3 ->
          Pool.All_rules
            { containing; constraints = unconstrained; minsup; minconf }
        | 4 -> Pool.Single_consequent_rules { containing; minsup; minconf }
        | 5 ->
          Pool.Support_for_k_itemsets
            { containing; k = 1 + Random.State.int rng 50 }
        | 6 ->
          Pool.Support_for_k_rules
            { involving = containing; minconf; k = 1 + Random.State.int rng 20 }
        | _ ->
          Pool.Boundary
            { target = deepest; constraints = unconstrained; minconf })

(* One run: a fresh engine, a pool of [domains], the whole workload as
   one batch. Returns the per-request digest sequence. An R_error has
   no digestible result; digest its message instead so error responses
   still participate in the bitwise comparison. *)
let digest_responses out =
  Array.map
    (fun resp ->
      match Replay.digest_response resp with
      | Some d -> d
      | None ->
        let msg = match resp with Pool.R_error e -> e | _ -> assert false in
        Fnv.string Fnv.empty msg)
    out

let digests_of_run ?engine db reqs ~domains ~budget_bytes =
  let engine = match engine with Some e -> e | None -> build_engine db in
  Pool.with_pool ~domains ~budget_bytes engine (fun pool ->
      digest_responses (Pool.run pool reqs))

(* Interleaved pass: requests stream through [Pool.submit] one at a
   time with no intervening drain, so later submissions land while
   earlier ones are still executing and every append quiesces a live
   stream. Completion order is whatever the domains produce; digests
   are still compared in submission order via the slot array. *)
let digests_of_stream db reqs ~domains ~budget_bytes =
  let engine = build_engine db in
  Pool.with_pool ~domains ~budget_bytes engine (fun pool ->
      let out = Array.make (Array.length reqs) (Pool.R_error "unserved") in
      Array.iteri
        (fun i req -> Pool.submit pool req (fun resp _dt -> out.(i) <- resp))
        reqs;
      Pool.drain pool;
      digest_responses out)

let () =
  let domains = ref 8 in
  let repeat = ref 3 in
  let rec parse = function
    | [] -> ()
    | "--domains" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> domains := n
      | _ -> failwith "--domains must be a positive integer");
      parse rest
    | "--repeat" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> repeat := n
      | _ -> failwith "--repeat must be a positive integer");
      parse rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  parse (List.tl (Array.to_list Sys.argv));
  let db = Olar_datagen.Quest.generate params in
  let reqs = build_workload db in
  let failures = ref 0 in
  List.iter
    (fun budget_bytes ->
      let label =
        if budget_bytes = 0 then "budget 0"
        else Printf.sprintf "budget %dMiB" (budget_bytes / 1024 / 1024)
      in
      let serial, serial_s =
        Olar_util.Timer.time (fun () ->
            digests_of_run db reqs ~domains:1 ~budget_bytes)
      in
      Printf.printf "%s: serial reference %d requests in %.2fs\n%!" label
        (Array.length serial) serial_s;
      for r = 1 to !repeat do
        let pooled, pooled_s =
          Olar_util.Timer.time (fun () ->
              digests_of_run db reqs ~domains:!domains ~budget_bytes)
        in
        let mismatches = ref 0 in
        Array.iteri
          (fun i d ->
            if not (Int64.equal d serial.(i)) then begin
              incr mismatches;
              if !mismatches <= 5 then
                Printf.printf
                  "  MISMATCH at request %d: serial %s, pool %s\n%!" i
                  (Fnv.to_hex serial.(i)) (Fnv.to_hex d)
            end)
          pooled;
        Printf.printf "%s: pool(%d domains) run %d/%d in %.2fs: %d mismatches\n%!"
          label !domains r !repeat pooled_s !mismatches;
        failures := !failures + !mismatches
      done;
      let streamed, streamed_s =
        Olar_util.Timer.time (fun () ->
            digests_of_stream db reqs ~domains:!domains ~budget_bytes)
      in
      let mismatches = ref 0 in
      Array.iteri
        (fun i d ->
          if not (Int64.equal d serial.(i)) then begin
            incr mismatches;
            if !mismatches <= 5 then
              Printf.printf
                "  STREAM MISMATCH at request %d: serial %s, pool %s\n%!" i
                (Fnv.to_hex serial.(i)) (Fnv.to_hex d)
          end)
        streamed;
      Printf.printf
        "%s: pool(%d domains) interleaved submit in %.2fs: %d mismatches\n%!"
        label !domains streamed_s !mismatches;
      failures := !failures + !mismatches)
    [ 0; 8 * 1024 * 1024 ];
  (* Traced pass: the same pooled workload with the sharded tracer on.
     Tracing must not perturb a single digest, and every span the merge
     emits must say which domain produced it. *)
  let sink, spans = Olar_obs.Sink.memory () in
  let traced_engine =
    Engine.at_threshold
      ~obs:(Olar_obs.Obs.create ~trace:sink ())
      db ~primary_support
  in
  let serial = digests_of_run db reqs ~domains:1 ~budget_bytes:0 in
  let traced, traced_s =
    Olar_util.Timer.time (fun () ->
        digests_of_run ~engine:traced_engine db reqs ~domains:!domains
          ~budget_bytes:0)
  in
  Olar_obs.Obs.flush_opt (Engine.obs traced_engine);
  let mismatches = ref 0 in
  Array.iteri
    (fun i d -> if not (Int64.equal d serial.(i)) then incr mismatches)
    traced;
  let emitted = spans () in
  let untagged =
    List.length
      (List.filter
         (fun s -> not (List.mem_assoc "domain" s.Olar_obs.Trace.attrs))
         emitted)
  in
  Printf.printf
    "traced: pool(%d domains) with tracing on in %.2fs: %d mismatches, %d \
     spans (%d untagged)\n%!"
    !domains traced_s !mismatches (List.length emitted) untagged;
  failures := !failures + !mismatches + untagged;
  if emitted = [] then begin
    print_endline "traced: no spans emitted — tracer silently disabled";
    incr failures
  end;
  if !failures > 0 then begin
    Printf.printf "pool stress FAILED: %d digest mismatches\n" !failures;
    exit 1
  end;
  print_endline "pool stress OK: all digests bitwise-identical to serial"
